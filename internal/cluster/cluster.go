// Package cluster implements the clustering metric of Moon, Jagadish,
// Faloutsos & Saltz ("Analysis of the clustering properties of the Hilbert
// space-filling curve", IEEE TKDE 2001), cited as the principal related
// metric in §II of the paper: given an axis-aligned query region, into how
// many maximal runs of consecutive curve positions do the region's cells
// fall?
//
// The stretch metrics of the paper and the clustering metric measure
// different things — stretch is about distances between individual cells,
// clustering about the fragmentation of regions — and the experiment
// harness contrasts them (experiment "ext-cluster"): the Hilbert curve wins
// on clustering while sharing the Θ(n^(1−1/d)) NN-stretch regime with Z.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/curve"
	"repro/internal/grid"
)

// MaxRegionCells bounds the region volume for a single Clusters evaluation.
const MaxRegionCells = 1 << 22

// Clusters returns the number of maximal runs of consecutive curve indices
// covering the axis-aligned region with inclusive corner lo and the given
// per-dimension extents. It errors if the region leaves the universe or is
// larger than MaxRegionCells.
func Clusters(c curve.Curve, lo grid.Point, extent []uint32) (int, error) {
	keys, err := regionKeys(c, lo, extent)
	if err != nil {
		return 0, err
	}
	if len(keys) == 0 {
		return 0, nil
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	runs := 1
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[i-1]+1 {
			runs++
		}
	}
	return runs, nil
}

// regionKeys collects the curve indices of every cell in the region.
func regionKeys(c curve.Curve, lo grid.Point, extent []uint32) ([]uint64, error) {
	u := c.Universe()
	d := u.D()
	if len(lo) != d || len(extent) != d {
		return nil, fmt.Errorf("cluster: region arity mismatch (d=%d)", d)
	}
	vol := uint64(1)
	for i := 0; i < d; i++ {
		if extent[i] == 0 {
			return nil, fmt.Errorf("cluster: empty extent in dimension %d", i+1)
		}
		if uint64(lo[i])+uint64(extent[i]) > uint64(u.Side()) {
			return nil, fmt.Errorf("cluster: region exceeds universe in dimension %d", i+1)
		}
		vol *= uint64(extent[i])
		if vol > MaxRegionCells {
			return nil, fmt.Errorf("cluster: region volume exceeds %d cells", MaxRegionCells)
		}
	}
	keys := make([]uint64, 0, vol)
	p := lo.Clone()
	for {
		keys = append(keys, c.Index(p))
		// Odometer increment within the region.
		i := 0
		for ; i < d; i++ {
			p[i]++
			if p[i] < lo[i]+extent[i] {
				break
			}
			p[i] = lo[i]
		}
		if i == d {
			return keys, nil
		}
	}
}

// Stats summarizes the clustering of a region shape over many placements.
type Stats struct {
	Mean    float64 // mean number of runs per region
	Max     int     // worst placement seen
	Regions int     // placements evaluated
}

// AvgClusters computes the exact mean cluster count of the given region
// shape over every position in the universe. The number of placements is
// Π (side − extent_i + 1); it errors when that exceeds maxRegions.
func AvgClusters(c curve.Curve, extent []uint32, maxRegions uint64) (Stats, error) {
	u := c.Universe()
	d := u.D()
	if len(extent) != d {
		return Stats{}, fmt.Errorf("cluster: extent arity mismatch (d=%d)", d)
	}
	placements := uint64(1)
	for i := 0; i < d; i++ {
		if extent[i] == 0 || extent[i] > u.Side() {
			return Stats{}, fmt.Errorf("cluster: bad extent %d in dimension %d", extent[i], i+1)
		}
		placements *= uint64(u.Side()-extent[i]) + 1
	}
	if maxRegions == 0 {
		maxRegions = 1 << 16
	}
	if placements > maxRegions {
		return Stats{}, fmt.Errorf("cluster: %d placements exceed limit %d (use SampledAvgClusters)", placements, maxRegions)
	}
	lo := u.NewPoint()
	var st Stats
	var sum float64
	for {
		runs, err := Clusters(c, lo, extent)
		if err != nil {
			return Stats{}, err
		}
		sum += float64(runs)
		if runs > st.Max {
			st.Max = runs
		}
		st.Regions++
		// Odometer over placements.
		i := 0
		for ; i < d; i++ {
			lo[i]++
			if uint64(lo[i])+uint64(extent[i]) <= uint64(u.Side()) {
				break
			}
			lo[i] = 0
		}
		if i == d {
			break
		}
	}
	st.Mean = sum / float64(st.Regions)
	return st, nil
}

// SampledAvgClusters estimates the mean cluster count over uniformly random
// placements of the region shape, deterministically from seed.
func SampledAvgClusters(c curve.Curve, extent []uint32, samples int, seed int64) (Stats, error) {
	return SampledAvgClustersRand(c, extent, samples, rand.New(rand.NewSource(seed)))
}

// SampledAvgClustersRand is SampledAvgClusters drawing placements from an
// explicit generator, so callers can share one seeded stream across several
// curves (sampling identical region placements for each) instead of
// coordinating seeds. rng must be non-nil.
func SampledAvgClustersRand(c curve.Curve, extent []uint32, samples int, rng *rand.Rand) (Stats, error) {
	if rng == nil {
		return Stats{}, fmt.Errorf("cluster: nil rand source")
	}
	u := c.Universe()
	d := u.D()
	if len(extent) != d {
		return Stats{}, fmt.Errorf("cluster: extent arity mismatch (d=%d)", d)
	}
	if samples < 1 {
		return Stats{}, fmt.Errorf("cluster: need at least 1 sample")
	}
	for i := 0; i < d; i++ {
		if extent[i] == 0 || extent[i] > u.Side() {
			return Stats{}, fmt.Errorf("cluster: bad extent %d in dimension %d", extent[i], i+1)
		}
	}
	lo := u.NewPoint()
	var st Stats
	var sum float64
	for s := 0; s < samples; s++ {
		for i := 0; i < d; i++ {
			lo[i] = uint32(rng.Intn(int(u.Side()-extent[i]) + 1))
		}
		runs, err := Clusters(c, lo, extent)
		if err != nil {
			return Stats{}, err
		}
		sum += float64(runs)
		if runs > st.Max {
			st.Max = runs
		}
		st.Regions++
	}
	st.Mean = sum / float64(st.Regions)
	return st, nil
}

// Square returns the d-dimensional extent vector with every side equal to
// size — the square/cubic regions used in Moon et al.'s analysis.
func Square(d int, size uint32) []uint32 {
	e := make([]uint32, d)
	for i := range e {
		e[i] = size
	}
	return e
}
