package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
)

func TestClustersFullUniverseIsOneRun(t *testing.T) {
	u := grid.MustNew(2, 3)
	for _, name := range curve.Names() {
		c, err := curve.ByName(name, u, 3)
		if err != nil {
			t.Fatal(err)
		}
		runs, err := Clusters(c, u.NewPoint(), Square(2, u.Side()))
		if err != nil {
			t.Fatal(err)
		}
		if runs != 1 {
			t.Errorf("%s: full universe splits into %d runs", name, runs)
		}
	}
}

func TestClustersSingleCell(t *testing.T) {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	runs, err := Clusters(z, u.MustPoint(3, 5), Square(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("single cell is %d runs", runs)
	}
}

func TestClustersZQuadrant(t *testing.T) {
	// An aligned quadrant of the Z curve is exactly one run; a row of the
	// 8×8 Z curve is fragmented into 4 runs of 2.
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	runs, err := Clusters(z, u.MustPoint(4, 4), Square(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("aligned Z quadrant is %d runs", runs)
	}
	// Dimension 1 contributes the most significant bit of each key pair, so
	// cells consecutive along dimension 2 pair up: a full line in dimension
	// 2 fragments into 4 runs of 2, while a line in dimension 1 is fully
	// scattered (8 singleton runs).
	runs, err = Clusters(z, u.MustPoint(0, 0), []uint32{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 4 {
		t.Fatalf("Z line along dim 2 is %d runs, want 4", runs)
	}
	runs, err = Clusters(z, u.MustPoint(0, 0), []uint32{8, 1})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 8 {
		t.Fatalf("Z line along dim 1 is %d runs, want 8", runs)
	}
}

func TestClustersSimpleRows(t *testing.T) {
	// For the simple curve a region of r rows is exactly r runs (unless the
	// rows are full-width and adjacent, where runs merge).
	u := grid.MustNew(2, 3)
	s := curve.NewSimple(u)
	runs, err := Clusters(s, u.MustPoint(1, 1), []uint32{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 4 {
		t.Fatalf("3×4 region on simple curve = %d runs, want 4", runs)
	}
	runs, err = Clusters(s, u.MustPoint(0, 2), []uint32{8, 3})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("full-width block on simple curve = %d runs, want 1", runs)
	}
}

func TestClustersValidation(t *testing.T) {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	if _, err := Clusters(z, u.MustPoint(6, 6), Square(2, 4)); err == nil {
		t.Fatal("out-of-universe region accepted")
	}
	if _, err := Clusters(z, u.MustPoint(0, 0), []uint32{0, 4}); err == nil {
		t.Fatal("empty extent accepted")
	}
	if _, err := Clusters(z, u.MustPoint(0, 0), []uint32{4}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestAvgClustersExact(t *testing.T) {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	h := curve.NewHilbert(u)
	stZ, err := AvgClusters(z, Square(2, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	stH, err := AvgClusters(h, Square(2, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if stZ.Regions != 49 || stH.Regions != 49 {
		t.Fatalf("placements %d/%d, want 49", stZ.Regions, stH.Regions)
	}
	// Moon et al.: Hilbert clusters 2×2 queries strictly better than Z.
	if stH.Mean >= stZ.Mean {
		t.Errorf("Hilbert mean clusters %v not below Z %v", stH.Mean, stZ.Mean)
	}
	if stZ.Max < 2 || stH.Max < 1 {
		t.Errorf("suspicious maxima: Z %d, H %d", stZ.Max, stH.Max)
	}
}

func TestAvgClustersGuards(t *testing.T) {
	u := grid.MustNew(2, 5)
	z := curve.NewZ(u)
	if _, err := AvgClusters(z, Square(2, 2), 10); err == nil {
		t.Fatal("placement explosion accepted")
	}
	if _, err := AvgClusters(z, Square(2, 0), 0); err == nil {
		t.Fatal("zero extent accepted")
	}
	if _, err := AvgClusters(z, []uint32{2}, 0); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestSampledMatchesExactOnSmallGrid(t *testing.T) {
	u := grid.MustNew(2, 3)
	h := curve.NewHilbert(u)
	exact, err := AvgClusters(h, Square(2, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	est, err := SampledAvgClusters(h, Square(2, 3), 4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-exact.Mean) > 0.15*exact.Mean {
		t.Fatalf("sampled %v far from exact %v", est.Mean, exact.Mean)
	}
	if est.Regions != 4000 {
		t.Fatalf("sample count %d", est.Regions)
	}
}

func TestSampledDeterministic(t *testing.T) {
	u := grid.MustNew(2, 4)
	z := curve.NewZ(u)
	a, err := SampledAvgClusters(z, Square(2, 3), 500, 123)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampledAvgClusters(z, Square(2, 3), 500, 123)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
	if _, err := SampledAvgClusters(z, Square(2, 3), 0, 1); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := SampledAvgClusters(z, []uint32{3}, 10, 1); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := SampledAvgClusters(z, Square(2, 0), 10, 1); err == nil {
		t.Fatal("zero extent accepted")
	}
}

// TestSampledRandEquivalence: the seed-taking wrapper and the explicit-rand
// entry point agree, and a nil generator is rejected.
func TestSampledRandEquivalence(t *testing.T) {
	u := grid.MustNew(2, 4)
	z := curve.NewZ(u)
	a, err := SampledAvgClusters(z, Square(2, 3), 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampledAvgClustersRand(z, Square(2, 3), 200, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("seed wrapper %+v, explicit rand %+v", a, b)
	}
	if _, err := SampledAvgClustersRand(z, Square(2, 3), 200, nil); err == nil {
		t.Fatal("nil rand accepted")
	}
}

func TestSquare(t *testing.T) {
	e := Square(3, 5)
	if len(e) != 3 || e[0] != 5 || e[2] != 5 {
		t.Fatalf("Square = %v", e)
	}
}
