package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/store"
)

// --- topology -------------------------------------------------------------

func testCurve(t *testing.T, k int) curve.Curve {
	t.Helper()
	return curve.NewHilbert(grid.MustNew(2, k))
}

// TestTopologyReplicationBounds: the replication factor is confined to
// 1 ≤ R ≤ N — R > N would demand more distinct copies than nodes exist to
// hold, R < 1 none at all.
func TestTopologyReplicationBounds(t *testing.T) {
	c := testCurve(t, 3)
	if _, err := NewTopology(c, 3, 4); err == nil {
		t.Fatal("R > N accepted")
	}
	if _, err := NewTopology(c, 3, 0); err == nil {
		t.Fatal("R = 0 accepted")
	}
	if _, err := NewTopology(c, 0, 1); err == nil {
		t.Fatal("N = 0 accepted")
	}
	topo, err := NewTopology(c, 3, 3)
	if err != nil {
		t.Fatalf("R = N rejected: %v", err)
	}
	// Full replication: every node holds the whole index space.
	n := c.Universe().N()
	for node := 0; node < 3; node++ {
		held := topo.HeldRanges(node)
		if len(held) != 1 || held[0].Lo != 0 || held[0].Hi != n {
			t.Fatalf("node %d holds %v, want [{0 %d}]", node, held, n)
		}
	}
}

// TestTopologyPlacementConsistency: Holds, HoldsKey, ReplicaSet and
// HeldRanges tell one consistent story, and every curve position is held by
// exactly R nodes.
func TestTopologyPlacementConsistency(t *testing.T) {
	c := testCurve(t, 3)
	for _, tc := range []struct{ n, r int }{{1, 1}, {3, 1}, {3, 2}, {4, 3}, {5, 5}} {
		topo, err := NewTopology(c, tc.n, tc.r)
		if err != nil {
			t.Fatalf("N=%d R=%d: %v", tc.n, tc.r, err)
		}
		for j := 0; j < tc.n; j++ {
			set := topo.ReplicaSet(j)
			if len(set) != tc.r || set[0] != j {
				t.Fatalf("N=%d R=%d: ReplicaSet(%d) = %v", tc.n, tc.r, j, set)
			}
			for _, node := range set {
				if !topo.Holds(node, j) {
					t.Fatalf("N=%d R=%d: node %d in ReplicaSet(%d) but Holds is false", tc.n, tc.r, node, j)
				}
			}
		}
		for key := uint64(0); key < c.Universe().N(); key++ {
			holders := 0
			for node := 0; node < tc.n; node++ {
				if topo.HoldsKey(node, key) {
					holders++
					if !query.IntervalsContain(topo.HeldRanges(node), key) {
						t.Fatalf("N=%d R=%d: node %d holds key %d but HeldRanges omit it", tc.n, tc.r, node, key)
					}
				}
			}
			if holders != tc.r {
				t.Fatalf("N=%d R=%d: key %d held by %d nodes, want %d", tc.n, tc.r, key, holders, tc.r)
			}
		}
	}
}

// --- view -----------------------------------------------------------------

func checkConserved(t *testing.T, v *View, label string) {
	t.Helper()
	if err := v.Conserved(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
}

// TestViewSingleSurvivor: killing all but one node leaves the survivor
// owning the whole index space, with conservation holding at every step.
func TestViewSingleSurvivor(t *testing.T) {
	c := testCurve(t, 3)
	const nodes = 5
	topo, err := NewTopology(c, nodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := NewView(topo)
	for _, i := range []int{1, 2, 0, 4} { // 3 survives
		if err := v.Kill(i); err != nil {
			t.Fatalf("kill %d: %v", i, err)
		}
		checkConserved(t, v, fmt.Sprintf("after kill %d", i))
	}
	n := c.Universe().N()
	if lo, hi := v.Current().Segment(3); lo != 0 || hi != n {
		t.Fatalf("survivor owns [%d, %d), want [0, %d)", lo, hi, n)
	}
	if got := v.NumAlive(); got != 1 {
		t.Fatalf("NumAlive = %d, want 1", got)
	}
}

// TestViewAllDeadAndBack: killing the last node empties the ledger;
// reviving any node restores a conserved ledger with the revived node
// owning everything still-dead nodes do not.
func TestViewAllDeadAndBack(t *testing.T) {
	topo, err := NewTopology(testCurve(t, 3), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := NewView(topo)
	for i := 0; i < 3; i++ {
		if err := v.Kill(i); err != nil {
			t.Fatal(err)
		}
	}
	if v.Current() != nil {
		t.Fatal("ledger non-nil with every node dead")
	}
	if err := v.Conserved(); err == nil {
		t.Fatal("Conserved must error with every node dead")
	}
	if err := v.Revive(1); err != nil {
		t.Fatal(err)
	}
	checkConserved(t, v, "after revive")
	n := topo.Curve().Universe().N()
	if lo, hi := v.Current().Segment(1); lo != 0 || hi != n {
		t.Fatalf("sole live node owns [%d, %d), want [0, %d)", lo, hi, n)
	}
}

// TestViewReviveRestoresBase: after every death is revived the ledger is
// exactly the base partition again — ownership is a pure function of the
// surviving death history.
func TestViewReviveRestoresBase(t *testing.T) {
	topo, err := NewTopology(testCurve(t, 3), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := NewView(topo)
	for _, i := range []int{2, 0, 3} {
		if err := v.Kill(i); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{0, 3, 2} { // revive in a different order
		if err := v.Revive(i); err != nil {
			t.Fatal(err)
		}
		checkConserved(t, v, fmt.Sprintf("after revive %d", i))
	}
	for j := 0; j < 4; j++ {
		blo, bhi := topo.Segment(j)
		lo, hi := v.Current().Segment(j)
		if lo != blo || hi != bhi {
			t.Fatalf("node %d owns [%d, %d) after full revival, base is [%d, %d)", j, lo, hi, blo, bhi)
		}
	}
}

// TestViewCascadeFuzz: random kill/revive walks keep the ledger conserved
// whenever anyone is alive, and dead nodes never own range — the invariant
// the chaos campaign asserts over the wire, here exercised exhaustively
// in-process.
func TestViewCascadeFuzz(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nodes := 2 + rng.Intn(6)
		r := 1 + rng.Intn(nodes)
		topo, err := NewTopology(testCurve(t, 3), nodes, r)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		v := NewView(topo)
		for step := 0; step < 24; step++ {
			i := rng.Intn(nodes)
			var op string
			if rng.Intn(2) == 0 {
				op = "kill"
				err = v.Kill(i)
			} else {
				op = "revive"
				err = v.Revive(i)
			}
			if err != nil {
				t.Fatalf("seed %d step %d: %s %d: %v", seed, step, op, i, err)
			}
			if v.NumAlive() == 0 {
				if v.Current() != nil {
					t.Fatalf("seed %d step %d: ledger non-nil with all dead", seed, step)
				}
				continue
			}
			if err := v.Conserved(); err != nil {
				t.Fatalf("seed %d step %d (%s %d): %v", seed, step, op, i, err)
			}
			for _, n := range v.LiveReplicas(rng.Intn(nodes)) {
				if !v.Alive(n) {
					t.Fatalf("seed %d step %d: LiveReplicas returned dead node %d", seed, step, n)
				}
			}
		}
	}
}

// --- router ---------------------------------------------------------------

// stubNode serves a held subset of a record set from an in-process store,
// with switchable failure and injectable local dark ranges — the in-memory
// stand-in for one sfcserved member. Writes mutate the record multiset and
// rebuild the store, so routed writes become scan-visible exactly as on a
// durable member.
type stubNode struct {
	mu   sync.Mutex // guards st and recs
	st   *store.Store
	recs []store.Record
	c    curve.Curve
	fail func() bool          // when non-nil and true, operations error
	dark []query.Interval     // local ranges reported unavailable
	slow func() time.Duration // when non-nil, delay before answering
}

// snapshot returns the current store under the lock.
func (s *stubNode) snapshot() *store.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

func (s *stubNode) Scan(ctx context.Context, ivs []query.Interval, _ time.Duration) (store.ScanResult, error) {
	if s.fail != nil && s.fail() {
		return store.ScanResult{}, errors.New("stub: node down")
	}
	if s.slow != nil {
		select {
		case <-time.After(s.slow()):
		case <-ctx.Done():
			return store.ScanResult{}, ctx.Err()
		}
	}
	res, err := s.snapshot().Scan(ctx, ivs)
	if err != nil {
		return store.ScanResult{}, err
	}
	if len(s.dark) == 0 {
		return res, nil
	}
	// Inject local darkness: drop records inside the dark ranges and
	// report the clipped ranges unavailable, as a store with lost pages
	// would.
	out := store.ScanResult{}
	for _, r := range res.Records {
		if !query.IntervalsContain(s.dark, s.c.Index(r.Point)) {
			out.Records = append(out.Records, r)
		}
	}
	var un []query.Interval
	for _, iv := range ivs {
		for _, d := range s.dark {
			lo, hi := iv.Lo, iv.Hi
			if lo < d.Lo {
				lo = d.Lo
			}
			if hi > d.Hi {
				hi = d.Hi
			}
			if lo < hi {
				un = append(un, query.Interval{Lo: lo, Hi: hi})
			}
		}
	}
	out.Unavailable = query.MergeIntervals(append(res.Unavailable, un...))
	return out, nil
}

func (s *stubNode) Ready(context.Context) bool { return s.fail == nil || !s.fail() }

// rebuild re-bulkloads the store from the mutated multiset; caller holds mu.
func (s *stubNode) rebuild() error {
	st, err := store.Bulkload(s.c, append([]store.Record(nil), s.recs...))
	if err != nil {
		return err
	}
	s.st = st
	return nil
}

func (s *stubNode) Put(_ context.Context, rec store.Record, _ time.Duration) error {
	if s.fail != nil && s.fail() {
		return errors.New("stub: node down")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, rec)
	return s.rebuild()
}

func (s *stubNode) Delete(_ context.Context, rec store.Record, _ time.Duration) error {
	if s.fail != nil && s.fail() {
		return errors.New("stub: node down")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := s.c.Index(rec.Point)
	out := make([]store.Record, 0, len(s.recs))
	for _, r := range s.recs {
		if r.Payload == rec.Payload && s.c.Index(r.Point) == key {
			continue
		}
		out = append(out, r)
	}
	s.recs = out
	return s.rebuild()
}

func (s *stubNode) Flush(context.Context, time.Duration) error {
	if s.fail != nil && s.fail() {
		return errors.New("stub: node down")
	}
	return nil
}

func (s *stubNode) Digest(ctx context.Context, ivs []query.Interval, _ time.Duration) (service.RangeDigest, error) {
	if s.fail != nil && s.fail() {
		return service.RangeDigest{}, errors.New("stub: node down")
	}
	res, err := s.snapshot().Scan(ctx, ivs)
	if err != nil {
		return service.RangeDigest{}, err
	}
	var d service.RangeDigest
	for _, r := range res.Records {
		d.Fold(s.c.Index(r.Point), r.Payload)
	}
	return d, nil
}

// buildStubCluster bulkloads each node's held subset of recs into its own
// store — the same placement the daemon applies in cluster mode.
func buildStubCluster(t *testing.T, topo *Topology, recs []store.Record) []*stubNode {
	t.Helper()
	c := topo.Curve()
	stubs := make([]*stubNode, topo.Nodes())
	for i := range stubs {
		var held []store.Record
		for _, r := range recs {
			if topo.HoldsKey(i, c.Index(r.Point)) {
				held = append(held, r)
			}
		}
		st, err := store.Bulkload(c, held)
		if err != nil {
			t.Fatal(err)
		}
		stubs[i] = &stubNode{st: st, recs: held, c: c}
	}
	return stubs
}

// distinctRecords samples count distinct cells of u — distinctness makes
// record order fully determined by curve position, so the property test can
// demand order-exact equality rather than tie-normalizing.
func distinctRecords(rng *rand.Rand, u *grid.Universe, count int) []store.Record {
	perm := rng.Perm(int(u.N()))
	recs := make([]store.Record, count)
	for i := range recs {
		p := u.NewPoint()
		u.FromLinear(uint64(perm[i]), p)
		recs[i] = store.Record{Point: p, Payload: uint64(i)}
	}
	return recs
}

func nodesOf(stubs []*stubNode) []Node {
	nodes := make([]Node, len(stubs))
	for i, s := range stubs {
		nodes[i] = s
	}
	return nodes
}

// TestRouterMatchesSingleStoreScanBox is the satellite property test: for
// every seed, a routed box query over an N-node R-replicated cluster of
// stub stores returns byte-for-byte what a single store holding the whole
// record set returns from ScanBox — same records, same order, zero dark
// intervals. Run under -race this also exercises the scatter's concurrency.
func TestRouterMatchesSingleStoreScanBox(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		u := grid.MustNew(2, 2+rng.Intn(2))
		names := curve.Names()
		c, err := curve.ByName(names[rng.Intn(len(names))], u, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		recs := distinctRecords(rng, u, 1+rng.Intn(int(u.N())))
		oracle, err := store.Bulkload(c, recs)
		if err != nil {
			t.Fatal(err)
		}
		nodes := 1 + rng.Intn(5)
		replicas := 1 + rng.Intn(nodes)
		topo, err := NewTopology(c, nodes, replicas)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := NewRouter(topo, nodesOf(buildStubCluster(t, topo, recs)))
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 8; q++ {
			b := randomBox(rng, u)
			want, err := oracle.ScanBox(ctx, b, store.ScanStrict())
			if err != nil {
				t.Fatalf("seed %d: oracle: %v", seed, err)
			}
			got, err := rt.Query(ctx, b)
			if err != nil {
				t.Fatalf("seed %d: router: %v", seed, err)
			}
			if len(got.Unavailable) != 0 {
				t.Fatalf("seed %d: healthy cluster reported dark %v", seed, got.Unavailable)
			}
			if len(got.Records) != len(want.Records) {
				t.Fatalf("seed %d q%d (N=%d R=%d): %d records, oracle %d",
					seed, q, nodes, replicas, len(got.Records), len(want.Records))
			}
			for i := range want.Records {
				if !got.Records[i].Point.Equal(want.Records[i].Point) || got.Records[i].Payload != want.Records[i].Payload {
					t.Fatalf("seed %d q%d: record %d = %v/%d, oracle %v/%d — order or content drift",
						seed, q, i, got.Records[i].Point, got.Records[i].Payload,
						want.Records[i].Point, want.Records[i].Payload)
				}
			}
		}
	}
}

func randomBox(rng *rand.Rand, u *grid.Universe) query.Box {
	lo, hi := u.NewPoint(), u.NewPoint()
	for j := range lo {
		a := uint32(rng.Intn(int(u.Side())))
		b := uint32(rng.Intn(int(u.Side())))
		if a > b {
			a, b = b, a
		}
		lo[j], hi[j] = a, b
	}
	b, err := query.NewBox(u, lo, hi)
	if err != nil {
		panic(err)
	}
	return b
}

// TestRouterDarkExactOnDeadReplicaSets: with R=1, killing a node makes
// exactly its segment dark; records outside it are still served, none
// inside leak through, and the ownership ledger stays conserved.
func TestRouterDarkExactOnDeadReplicaSets(t *testing.T) {
	ctx := context.Background()
	c := testCurve(t, 3)
	u := c.Universe()
	rng := rand.New(rand.NewSource(42))
	recs := distinctRecords(rng, u, int(u.N())/2)
	topo, err := NewTopology(c, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	stubs := buildStubCluster(t, topo, recs)
	down := false
	stubs[2].fail = func() bool { return down }
	rt, err := NewRouter(topo, nodesOf(stubs), WithHedgeDelay(0))
	if err != nil {
		t.Fatal(err)
	}
	down = true

	full := []query.Interval{{Lo: 0, Hi: u.N()}}
	res, err := rt.Scan(ctx, full)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := topo.Segment(2)
	if len(res.Unavailable) != 1 || res.Unavailable[0] != (query.Interval{Lo: lo, Hi: hi}) {
		t.Fatalf("dark = %v, want exactly node 2's segment [%d, %d)", res.Unavailable, lo, hi)
	}
	for _, r := range res.Records {
		if k := c.Index(r.Point); k >= lo && k < hi {
			t.Fatalf("record with key %d served from inside the dark segment", k)
		}
	}
	served := 0
	for _, r := range recs {
		if k := c.Index(r.Point); k < lo || k >= hi {
			served++
		}
	}
	if len(res.Records) != served {
		t.Fatalf("%d records served, want every record outside the dark segment (%d)", len(res.Records), served)
	}
	if rt.Alive(2) {
		t.Fatal("router still believes the failed node alive after the scan")
	}
	if err := rt.Conserved(); err != nil {
		t.Fatalf("ledger after failover: %v", err)
	}

	// The node recovers: Probe revives it and the darkness lifts.
	down = false
	if revived := rt.Probe(ctx); len(revived) != 1 || revived[0] != 2 {
		t.Fatalf("Probe revived %v, want [2]", revived)
	}
	res, err = rt.Scan(ctx, full)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unavailable) != 0 {
		t.Fatalf("dark after revival = %v, want none", res.Unavailable)
	}
	if len(res.Records) != len(recs) {
		t.Fatalf("%d records after revival, want all %d", len(res.Records), len(recs))
	}
}

// TestRouterReplicaFallbackOnFailure: with R=2 the death of one node loses
// nothing — its successor serves the segment and the result is complete.
func TestRouterReplicaFallbackOnFailure(t *testing.T) {
	ctx := context.Background()
	c := testCurve(t, 3)
	u := c.Universe()
	rng := rand.New(rand.NewSource(7))
	recs := distinctRecords(rng, u, int(u.N())/2)
	topo, err := NewTopology(c, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	stubs := buildStubCluster(t, topo, recs)
	stubs[0].fail = func() bool { return true }
	rt, err := NewRouter(topo, nodesOf(stubs), WithHedgeDelay(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Scan(ctx, []query.Interval{{Lo: 0, Hi: u.N()}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unavailable) != 0 {
		t.Fatalf("dark = %v, want none — node 1 replicates node 0's segment", res.Unavailable)
	}
	if len(res.Records) != len(recs) {
		t.Fatalf("%d records, want all %d", len(res.Records), len(recs))
	}
	if res.Failovers == 0 {
		t.Fatal("expected at least one failover to the surviving replica")
	}
}

// TestRouterLocalDarkFallsBackToReplica: a node whose local store reports
// part of its range dark (lost pages) does not darken the query — the
// router re-asks the surviving replica for exactly the missing ranges.
func TestRouterLocalDarkFallsBackToReplica(t *testing.T) {
	ctx := context.Background()
	c := testCurve(t, 3)
	u := c.Universe()
	rng := rand.New(rand.NewSource(11))
	recs := distinctRecords(rng, u, int(u.N())/2)
	topo, err := NewTopology(c, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	stubs := buildStubCluster(t, topo, recs)
	// Node 0 loses pages covering the first half of its home segment.
	lo, hi := topo.Segment(0)
	stubs[0].dark = []query.Interval{{Lo: lo, Hi: lo + (hi-lo)/2}}
	rt, err := NewRouter(topo, nodesOf(stubs), WithHedgeDelay(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Scan(ctx, []query.Interval{{Lo: 0, Hi: u.N()}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unavailable) != 0 {
		t.Fatalf("dark = %v, want none — the replica holds the lost ranges", res.Unavailable)
	}
	if len(res.Records) != len(recs) {
		t.Fatalf("%d records, want all %d — replica fallback lost data", len(res.Records), len(recs))
	}
	if !rt.Alive(0) {
		t.Fatal("local darkness must not mark the node dead")
	}
	if err := rt.Conserved(); err != nil {
		t.Fatal(err)
	}
}

// TestRouterHedgesSlowNode: a node slower than the hedge delay loses the
// race to its replica but keeps its liveness and ownership.
func TestRouterHedgesSlowNode(t *testing.T) {
	ctx := context.Background()
	c := testCurve(t, 3)
	u := c.Universe()
	rng := rand.New(rand.NewSource(3))
	recs := distinctRecords(rng, u, int(u.N())/2)
	topo, err := NewTopology(c, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	stubs := buildStubCluster(t, topo, recs)
	stubs[0].slow = func() time.Duration { return 200 * time.Millisecond }
	rt, err := NewRouter(topo, nodesOf(stubs), WithHedgeDelay(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Scan(ctx, []query.Interval{{Lo: 0, Hi: u.N()}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(recs) || len(res.Unavailable) != 0 {
		t.Fatalf("hedged scan: %d records, dark %v; want %d and none", len(res.Records), res.Unavailable, len(recs))
	}
	if res.Hedges == 0 {
		t.Fatal("expected the hedge timer to fire against the slow node")
	}
	if !rt.Alive(0) {
		t.Fatal("slow but healthy node was marked dead — hedge losses must not kill")
	}
}

// TestRouterScanValidation: malformed interval sets are rejected before any
// fan-out.
func TestRouterScanValidation(t *testing.T) {
	c := testCurve(t, 3)
	topo, err := NewTopology(c, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(topo, nodesOf(buildStubCluster(t, topo, nil)))
	if err != nil {
		t.Fatal(err)
	}
	n := c.Universe().N()
	for _, bad := range [][]query.Interval{
		{{Lo: 5, Hi: 5}},                  // empty
		{{Lo: 3, Hi: 2}},                  // inverted
		{{Lo: 0, Hi: n + 1}},              // out of range
		{{Lo: 8, Hi: 16}, {Lo: 0, Hi: 4}}, // unsorted
		{{Lo: 0, Hi: 8}, {Lo: 4, Hi: 12}}, // overlapping
	} {
		if _, err := rt.Scan(context.Background(), bad); err == nil {
			t.Fatalf("intervals %v accepted", bad)
		}
	}
}
