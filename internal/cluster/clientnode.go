package cluster

import (
	"context"
	"io"
	"time"

	"repro/internal/client"
	"repro/internal/query"
	"repro/internal/store"
)

// ClientNode adapts the HTTP client for one sfcserved daemon to the
// router's Node interface: interval scans go through the daemon's /scan
// endpoint, readiness through /readyz. Each node keeps its own client and
// therefore its own retry budget — a failover or hedge to another node
// never consumes this node's attempts.
type ClientNode struct {
	cl *client.Client
}

// NewClientNode wraps cl as a cluster member handle.
func NewClientNode(cl *client.Client) *ClientNode { return &ClientNode{cl: cl} }

// Scan runs the interval scan against the daemon over the client's
// streaming surface — incremental over the binary transport, a buffered
// shim over JSON — accumulating batches into the store's result shape as
// they arrive. Batches from the client stream stay valid across Next calls,
// so the records are appended without a per-record copy.
func (n *ClientNode) Scan(ctx context.Context, ivs []query.Interval, timeout time.Duration) (store.ScanResult, error) {
	st, err := n.cl.ScanStream(ctx, ivs, client.WithTimeout(timeout))
	if err != nil {
		return store.ScanResult{}, err
	}
	defer st.Close()
	var res store.ScanResult
	for {
		batch, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return store.ScanResult{}, err
		}
		res.Records = append(res.Records, batch...)
	}
	tr, _ := st.Trailer()
	res.PagesRead = int(tr.PagesRead)
	if len(tr.Unavailable) > 0 {
		res.Unavailable = append([]query.Interval(nil), tr.Unavailable...)
	}
	return res, nil
}

// Ready probes the daemon's /readyz.
func (n *ClientNode) Ready(ctx context.Context) bool {
	ok, err := n.cl.Readyz(ctx)
	return err == nil && ok
}
