package cluster

import (
	"context"
	"io"
	"time"

	"repro/internal/client"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/store"
)

// ClientNode adapts the HTTP client for one sfcserved daemon to the
// router's Node interface: interval scans go through the daemon's /scan
// endpoint, readiness through /readyz, writes through /put, /delete and
// /flush (or their binary frames). Each node keeps its own client and
// therefore its own retry budget — a failover or hedge to another node
// never consumes this node's attempts.
type ClientNode struct {
	cl *client.Client
	// wcl, when set, carries the write operations instead of cl. The router
	// daemon points it at a JSON client when the member advertises a binary
	// listener without the write capability — an old read-only-wire daemon —
	// so reads upgrade to the wire while writes degrade gracefully to HTTP.
	wcl *client.Client
}

// ClientNodeOption configures NewClientNode.
type ClientNodeOption func(*ClientNode)

// WithNodeWriteClient routes the node's Put, Delete and Flush through wcl
// while scans and probes stay on the primary client.
func WithNodeWriteClient(wcl *client.Client) ClientNodeOption {
	return func(n *ClientNode) { n.wcl = wcl }
}

// NewClientNode wraps cl as a cluster member handle.
func NewClientNode(cl *client.Client, opts ...ClientNodeOption) *ClientNode {
	n := &ClientNode{cl: cl}
	for _, opt := range opts {
		if opt != nil {
			opt(n)
		}
	}
	return n
}

// writeClient returns the client carrying write operations.
func (n *ClientNode) writeClient() *client.Client {
	if n.wcl != nil {
		return n.wcl
	}
	return n.cl
}

// Scan runs the interval scan against the daemon over the client's
// streaming surface — incremental over the binary transport, a buffered
// shim over JSON — accumulating batches into the store's result shape as
// they arrive. Batches from the client stream stay valid across Next calls,
// so the records are appended without a per-record copy.
func (n *ClientNode) Scan(ctx context.Context, ivs []query.Interval, timeout time.Duration) (store.ScanResult, error) {
	st, err := n.cl.ScanStream(ctx, ivs, client.WithTimeout(timeout))
	if err != nil {
		return store.ScanResult{}, err
	}
	defer st.Close()
	var res store.ScanResult
	for {
		batch, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return store.ScanResult{}, err
		}
		res.Records = append(res.Records, batch...)
	}
	tr, _ := st.Trailer()
	res.PagesRead = int(tr.PagesRead)
	if len(tr.Unavailable) > 0 {
		res.Unavailable = append([]query.Interval(nil), tr.Unavailable...)
	}
	return res, nil
}

// Ready probes the daemon's /readyz.
func (n *ClientNode) Ready(ctx context.Context) bool {
	ok, err := n.cl.Readyz(ctx)
	return err == nil && ok
}

// Put durably inserts rec on the daemon. The router owns replication-level
// retry (quorum, anti-entropy), so a maybe-applied failure surfaces as-is
// rather than risking a duplicate record.
func (n *ClientNode) Put(ctx context.Context, rec store.Record, timeout time.Duration) error {
	_, err := n.writeClient().Put(ctx, rec, client.WithTimeout(timeout))
	return err
}

// Delete durably removes every stored instance equal to rec.
func (n *ClientNode) Delete(ctx context.Context, rec store.Record, timeout time.Duration) error {
	_, err := n.writeClient().Delete(ctx, rec, client.WithTimeout(timeout))
	return err
}

// Flush persists the daemon's memtables to on-disk runs.
func (n *ClientNode) Flush(ctx context.Context, timeout time.Duration) error {
	_, err := n.writeClient().Flush(ctx, client.WithTimeout(timeout))
	return err
}

// Digest fetches the daemon's anti-entropy summary over ivs. Digests ride
// the HTTP side channel (GET /digest) on both transports.
func (n *ClientNode) Digest(ctx context.Context, ivs []query.Interval, timeout time.Duration) (service.RangeDigest, error) {
	return n.cl.Digest(ctx, ivs, client.WithTimeout(timeout))
}
