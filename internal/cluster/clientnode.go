package cluster

import (
	"context"
	"time"

	"repro/internal/client"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/store"
)

// ClientNode adapts the HTTP client for one sfcserved daemon to the
// router's Node interface: interval scans go through the daemon's /scan
// endpoint, readiness through /readyz. Each node keeps its own client and
// therefore its own retry budget — a failover or hedge to another node
// never consumes this node's attempts.
type ClientNode struct {
	cl *client.Client
}

// NewClientNode wraps cl as a cluster member handle.
func NewClientNode(cl *client.Client) *ClientNode { return &ClientNode{cl: cl} }

// Scan runs the interval scan against the daemon — over whichever
// transport the client was built with — and converts the wire response to
// the store's result shape.
func (n *ClientNode) Scan(ctx context.Context, ivs []query.Interval, timeout time.Duration) (store.ScanResult, error) {
	resp, err := n.cl.ScanIntervals(ctx, ivs, client.WithTimeout(timeout))
	if err != nil {
		return store.ScanResult{}, err
	}
	res := store.ScanResult{Records: make([]store.Record, len(resp.Records)), PagesRead: int(resp.PagesRead)}
	for i, r := range resp.Records {
		res.Records[i] = store.Record{Point: grid.Point(r.Point), Payload: r.Payload}
	}
	if len(resp.Unavailable) > 0 {
		res.Unavailable = make([]query.Interval, len(resp.Unavailable))
		for i, iv := range resp.Unavailable {
			res.Unavailable[i] = query.Interval{Lo: iv.Lo, Hi: iv.Hi}
		}
	}
	return res, nil
}

// Ready probes the daemon's /readyz.
func (n *ClientNode) Ready(ctx context.Context) bool {
	ok, err := n.cl.Readyz(ctx)
	return err == nil && ok
}
