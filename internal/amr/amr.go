// Package amr implements adaptive mesh refinement over the grid universe,
// partitioned by space filling curves — the "partitioning dynamic adaptive
// grid hierarchies" application of Parashar & Browne cited in the paper's
// introduction ([22]).
//
// The mesh is a forest of axis-aligned subcubes ("leaves") of the finest-
// resolution universe. A leaf at level ℓ covers an aligned subcube of side
// 2^(k−ℓ). For a hierarchical curve (Z, Hilbert, Gray) every aligned
// subcube occupies one contiguous, aligned interval of curve indices, and a
// parent's interval is exactly the concatenation of its 2^d children's
// intervals. Consequently the leaf array, kept sorted by interval start,
// supports refinement by splicing children in place — no global re-sort —
// and contiguous-segment partitions remain valid under refinement. This
// locality of *structural updates* is the reason SFC orders underpin
// adaptive tree codes (Warren & Salmon [26]).
package amr

import (
	"fmt"

	"repro/internal/curve"
	"repro/internal/grid"
)

// Leaf is one mesh cell: an aligned subcube at a refinement level.
type Leaf struct {
	KeyLo uint64 // first finest-resolution curve index covered
	KeyHi uint64 // one past the last covered index
	Level int    // 0 = whole universe, k = single finest cell
}

// Cells returns the number of finest-resolution cells the leaf covers.
func (l Leaf) Cells() uint64 { return l.KeyHi - l.KeyLo }

// Mesh is an adaptive mesh over a hierarchical curve.
type Mesh struct {
	c      curve.Curve
	u      *grid.Universe
	leaves []Leaf // sorted by KeyLo; intervals tile [0, n)
}

// IsHierarchical reports whether the curve maps every aligned subcube to an
// aligned contiguous index interval — the property the mesh requires. The
// shipped Z, Hilbert and Gray curves qualify.
func IsHierarchical(c curve.Curve) bool {
	switch c.(type) {
	case *curve.Z, *curve.Hilbert, *curve.Gray:
		return true
	default:
		return false
	}
}

// NewMesh creates a mesh over the curve's universe, uniformly refined to
// startLevel (0 = a single root leaf, k = fully refined).
func NewMesh(c curve.Curve, startLevel int) (*Mesh, error) {
	if !IsHierarchical(c) {
		return nil, fmt.Errorf("amr: curve %s is not hierarchical", c.Name())
	}
	u := c.Universe()
	if startLevel < 0 || startLevel > u.K() {
		return nil, fmt.Errorf("amr: start level %d outside [0, %d]", startLevel, u.K())
	}
	d := u.D()
	leafCells := uint64(1) << uint(d*(u.K()-startLevel))
	count := u.N() / leafCells
	m := &Mesh{c: c, u: u, leaves: make([]Leaf, count)}
	for i := uint64(0); i < count; i++ {
		m.leaves[i] = Leaf{KeyLo: i * leafCells, KeyHi: (i + 1) * leafCells, Level: startLevel}
	}
	return m, nil
}

// Curve returns the ordering curve.
func (m *Mesh) Curve() curve.Curve { return m.c }

// Len returns the number of leaves.
func (m *Mesh) Len() int { return len(m.leaves) }

// Leaves returns the leaf slice (sorted by KeyLo). The caller must not
// modify it.
func (m *Mesh) Leaves() []Leaf { return m.leaves }

// Corner writes the lowest-coordinate cell of the leaf's subcube into dst
// and returns the subcube side length.
func (m *Mesh) Corner(l Leaf, dst grid.Point) uint32 {
	m.c.Point(l.KeyLo, dst)
	size := m.u.Side() >> uint(l.Level)
	for i := range dst {
		dst[i] &^= size - 1 // align down (sizes are powers of two)
	}
	return size
}

// Refine splits the leaf at index li into its 2^d children, splicing them
// into the leaf array in curve order. It errors at the finest level.
func (m *Mesh) Refine(li int) error {
	if li < 0 || li >= len(m.leaves) {
		return fmt.Errorf("amr: leaf %d out of range", li)
	}
	l := m.leaves[li]
	if l.Level >= m.u.K() {
		return fmt.Errorf("amr: leaf %d already at finest level", li)
	}
	d := m.u.D()
	children := uint64(1) << uint(d)
	childCells := l.Cells() / children
	kids := make([]Leaf, children)
	for i := uint64(0); i < children; i++ {
		kids[i] = Leaf{
			KeyLo: l.KeyLo + i*childCells,
			KeyHi: l.KeyLo + (i+1)*childCells,
			Level: l.Level + 1,
		}
	}
	m.leaves = append(m.leaves[:li], append(kids, m.leaves[li+1:]...)...)
	return nil
}

// RefineWhere refines, repeatedly, every leaf above the finest level for
// which pred returns true, until no leaf qualifies or all are at maxLevel.
// pred receives the leaf's corner cell and subcube side.
func (m *Mesh) RefineWhere(maxLevel int, pred func(corner grid.Point, size uint32, level int) bool) error {
	if maxLevel > m.u.K() {
		maxLevel = m.u.K()
	}
	corner := m.u.NewPoint()
	for li := 0; li < len(m.leaves); {
		l := m.leaves[li]
		if l.Level >= maxLevel {
			li++
			continue
		}
		size := m.Corner(l, corner)
		if !pred(corner, size, l.Level) {
			li++
			continue
		}
		if err := m.Refine(li); err != nil {
			return err
		}
		// Re-examine the spliced children at the same position.
	}
	return nil
}

// Validate checks the structural invariant: leaves sorted, intervals
// exactly tiling [0, n), levels consistent with interval sizes.
func (m *Mesh) Validate() error {
	var pos uint64
	d := m.u.D()
	for i, l := range m.leaves {
		if l.KeyLo != pos {
			return fmt.Errorf("amr: leaf %d starts at %d, want %d", i, l.KeyLo, pos)
		}
		if l.KeyHi <= l.KeyLo {
			return fmt.Errorf("amr: leaf %d empty", i)
		}
		want := uint64(1) << uint(d*(m.u.K()-l.Level))
		if l.Cells() != want {
			return fmt.Errorf("amr: leaf %d covers %d cells, level %d implies %d", i, l.Cells(), l.Level, want)
		}
		if l.KeyLo%want != 0 {
			return fmt.Errorf("amr: leaf %d not aligned", i)
		}
		pos = l.KeyHi
	}
	if pos != m.u.N() {
		return fmt.Errorf("amr: leaves cover %d of %d cells", pos, m.u.N())
	}
	return nil
}

// LeafWeight assigns a computational weight to a leaf.
type LeafWeight func(l Leaf) float64

// CellsWeight weighs a leaf by its covered cell count (uniform work per
// finest cell).
func CellsWeight(l Leaf) float64 { return float64(l.Cells()) }

// UnitLeafWeight weighs every leaf equally (uniform work per leaf, the
// usual model when each leaf carries a fixed-size stencil task).
func UnitLeafWeight(Leaf) float64 { return 1 }

// Partition cuts the leaf sequence into parts contiguous segments balancing
// the leaf weight — valid because leaves are in curve order, so contiguous
// leaf runs are spatially coherent exactly as in the flat case.
func (m *Mesh) Partition(parts int, w LeafWeight) ([]int, error) {
	if parts < 1 {
		return nil, fmt.Errorf("amr: parts = %d", parts)
	}
	if w == nil {
		w = UnitLeafWeight
	}
	var total float64
	for _, l := range m.leaves {
		wt := w(l)
		if wt < 0 {
			return nil, fmt.Errorf("amr: negative leaf weight %v", wt)
		}
		total += wt
	}
	cuts := make([]int, parts+1)
	cuts[parts] = len(m.leaves)
	if total == 0 {
		for j := 1; j < parts; j++ {
			cuts[j] = len(m.leaves) * j / parts
		}
		return cuts, nil
	}
	var prefix float64
	next := 1
	for i, l := range m.leaves {
		prefix += w(l)
		for next < parts && prefix >= total*float64(next)/float64(parts) {
			cuts[next] = i + 1
			next++
		}
	}
	for ; next < parts; next++ {
		cuts[next] = len(m.leaves)
	}
	return cuts, nil
}

// PartLoads returns the per-part weight of a cut vector from Partition.
func (m *Mesh) PartLoads(cuts []int, w LeafWeight) []float64 {
	if w == nil {
		w = UnitLeafWeight
	}
	loads := make([]float64, len(cuts)-1)
	for j := 0; j+1 < len(cuts); j++ {
		for i := cuts[j]; i < cuts[j+1]; i++ {
			loads[j] += w(m.leaves[i])
		}
	}
	return loads
}
