package amr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/curve"
	"repro/internal/grid"
)

// TestQuickRefinementInvariant drives random refinement sequences over
// quick-generated shapes and hierarchical curves, validating the mesh after
// every operation.
func TestQuickRefinementInvariant(t *testing.T) {
	names := []string{"z", "hilbert", "gray"}
	f := func(dRaw, kRaw, curveRaw uint8, seed int64) bool {
		d := 2 + int(dRaw)%2
		k := 2 + int(kRaw)%3
		u := grid.MustNew(d, k)
		c, err := curve.ByName(names[int(curveRaw)%len(names)], u, 1)
		if err != nil {
			return false
		}
		m, err := NewMesh(c, 1)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 15; op++ {
			li := rng.Intn(m.Len())
			if m.Leaves()[li].Level >= u.K() {
				continue
			}
			if err := m.Refine(li); err != nil {
				return false
			}
			if m.Validate() != nil {
				return false
			}
		}
		// Partitions over the refined mesh stay structurally sound.
		cuts, err := m.Partition(1+rng.Intn(6), CellsWeight)
		if err != nil {
			return false
		}
		return cuts[len(cuts)-1] == m.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
