package amr_test

import (
	"fmt"

	"repro/internal/amr"
	"repro/internal/curve"
	"repro/internal/grid"
)

func ExampleMesh_Refine() {
	u := grid.MustNew(2, 2) // 4×4 finest resolution
	m, err := amr.NewMesh(curve.NewZ(u), 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("leaves before:", m.Len())
	if err := m.Refine(0); err != nil {
		panic(err)
	}
	fmt.Println("leaves after:", m.Len(), "valid:", m.Validate() == nil)
	// Output:
	// leaves before: 4
	// leaves after: 7 valid: true
}
