package amr

import (
	"math/rand"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/partition"
)

func hierarchicalCurves(t *testing.T, u *grid.Universe) []curve.Curve {
	t.Helper()
	var cs []curve.Curve
	for _, name := range []string{"z", "hilbert", "gray"} {
		c, err := curve.ByName(name, u, 1)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	return cs
}

func TestNewMeshValidation(t *testing.T) {
	u := grid.MustNew(2, 4)
	if _, err := NewMesh(curve.NewSimple(u), 0); err == nil {
		t.Fatal("non-hierarchical curve accepted")
	}
	if _, err := NewMesh(curve.NewZ(u), -1); err == nil {
		t.Fatal("negative level accepted")
	}
	if _, err := NewMesh(curve.NewZ(u), 5); err == nil {
		t.Fatal("level beyond k accepted")
	}
	m, err := NewMesh(curve.NewZ(u), 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 16 { // 4×4 leaves of 4×4 cells
		t.Fatalf("Len = %d", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Curve().Name() != "z" {
		t.Fatal("curve accessor wrong")
	}
}

func TestRefineSplicesInPlace(t *testing.T) {
	for _, dk := range [][2]int{{2, 4}, {3, 3}} {
		u := grid.MustNew(dk[0], dk[1])
		for _, c := range hierarchicalCurves(t, u) {
			m, err := NewMesh(c, 1)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(9))
			for trial := 0; trial < 40; trial++ {
				li := rng.Intn(m.Len())
				if m.Leaves()[li].Level >= u.K() {
					continue
				}
				before := m.Len()
				if err := m.Refine(li); err != nil {
					t.Fatal(err)
				}
				if m.Len() != before+(1<<uint(u.D()))-1 {
					t.Fatalf("%s: leaf count %d after refine of %d", c.Name(), m.Len(), before)
				}
				// The structural invariant must hold after every splice —
				// this is the hierarchical-curve property in action.
				if err := m.Validate(); err != nil {
					t.Fatalf("%s: %v", c.Name(), err)
				}
			}
		}
	}
}

func TestRefineGuards(t *testing.T) {
	u := grid.MustNew(2, 2)
	m, err := NewMesh(curve.NewZ(u), 2) // fully refined
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Refine(0); err == nil {
		t.Fatal("refining finest leaf accepted")
	}
	if err := m.Refine(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := m.Refine(m.Len()); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestCornerGeometry(t *testing.T) {
	u := grid.MustNew(2, 3)
	for _, c := range hierarchicalCurves(t, u) {
		m, err := NewMesh(c, 1)
		if err != nil {
			t.Fatal(err)
		}
		corner := u.NewPoint()
		seen := map[string]bool{}
		for _, l := range m.Leaves() {
			size := m.Corner(l, corner)
			if size != 4 {
				t.Fatalf("%s: level-1 leaf size %d", c.Name(), size)
			}
			for _, v := range corner {
				if v%size != 0 {
					t.Fatalf("%s: corner %v not aligned", c.Name(), corner)
				}
			}
			if seen[corner.String()] {
				t.Fatalf("%s: duplicate corner %v", c.Name(), corner)
			}
			seen[corner.String()] = true
			// Every cell of the leaf's interval lies in the subcube.
			p := u.NewPoint()
			for key := l.KeyLo; key < l.KeyHi; key++ {
				c.Point(key, p)
				for i := range p {
					if p[i] < corner[i] || p[i] >= corner[i]+size {
						t.Fatalf("%s: key %d at %v outside subcube %v+%d", c.Name(), key, p, corner, size)
					}
				}
			}
		}
		if len(seen) != 4 {
			t.Fatalf("%s: %d distinct corners", c.Name(), len(seen))
		}
	}
}

func TestRefineWhereHotspot(t *testing.T) {
	// Refine around a hotspot at the origin: levels must grade from fine
	// near the hotspot to coarse far away, and the mesh must stay valid.
	u := grid.MustNew(2, 5)
	h := curve.NewHilbert(u)
	m, err := NewMesh(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	err = m.RefineWhere(5, func(corner grid.Point, size uint32, level int) bool {
		return corner[0] < 8 && corner[1] < 8 // refine fully inside the hotspot quadrant
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	corner := u.NewPoint()
	fine, coarse := 0, 0
	for _, l := range m.Leaves() {
		m.Corner(l, corner)
		if corner[0] < 8 && corner[1] < 8 {
			if l.Level != 5 {
				t.Fatalf("hotspot leaf at %v level %d", corner, l.Level)
			}
			fine++
		} else {
			coarse++
		}
	}
	if fine != 64 { // the 8×8 hotspot fully refined to single cells
		t.Fatalf("%d fine leaves", fine)
	}
	if coarse == 0 || coarse > 200 {
		t.Fatalf("%d coarse leaves", coarse)
	}
	// Adaptivity: far fewer leaves than fully refining everything.
	if m.Len() >= int(u.N()) {
		t.Fatalf("mesh not adaptive: %d leaves", m.Len())
	}
}

func TestPartitionBalancesLeafWeights(t *testing.T) {
	u := grid.MustNew(2, 5)
	z := curve.NewZ(u)
	m, err := NewMesh(z, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Refine one quadrant to create skewed leaf counts.
	err = m.RefineWhere(4, func(corner grid.Point, size uint32, level int) bool {
		return corner[0] >= 16 && corner[1] >= 16
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []LeafWeight{UnitLeafWeight, CellsWeight} {
		cuts, err := m.Partition(6, w)
		if err != nil {
			t.Fatal(err)
		}
		if len(cuts) != 7 || cuts[0] != 0 || cuts[6] != m.Len() {
			t.Fatalf("bad cuts %v", cuts)
		}
		loads := m.PartLoads(cuts, w)
		if ib := partition.Imbalance(loads); ib > 1.35 {
			t.Fatalf("imbalance %v for %d leaves", ib, m.Len())
		}
	}
	if _, err := m.Partition(0, nil); err == nil {
		t.Fatal("parts=0 accepted")
	}
	if _, err := m.Partition(2, func(Leaf) float64 { return -1 }); err == nil {
		t.Fatal("negative weight accepted")
	}
	// Zero weights fall back to even leaf counts.
	cuts, err := m.Partition(3, func(Leaf) float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if cuts[3] != m.Len() {
		t.Fatal("zero-weight cuts do not cover")
	}
}

func TestIsHierarchical(t *testing.T) {
	u := grid.MustNew(2, 3)
	if !IsHierarchical(curve.NewZ(u)) || !IsHierarchical(curve.NewHilbert(u)) || !IsHierarchical(curve.NewGray(u)) {
		t.Fatal("hierarchical curves not recognized")
	}
	if IsHierarchical(curve.NewSimple(u)) || IsHierarchical(curve.NewSnake(u)) {
		t.Fatal("row-major curves misclassified")
	}
}
