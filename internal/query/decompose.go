// Package query implements an SFC-keyed spatial index — the database
// application of space filling curves referenced by the paper's
// introduction (secondary-memory data structures [9], GIS [1]). Points are
// stored sorted by curve key; an axis-aligned box query is decomposed into
// a set of curve-index intervals, each answered by binary search.
//
// The number of intervals a box decomposes into is exactly the clustering
// metric of Moon et al. (see the cluster package), tying the database view
// back to the paper's related-work discussion.
package query

import (
	"fmt"
	"sort"

	"repro/internal/curve"
	"repro/internal/grid"
)

// Box is an axis-aligned query region with inclusive corners Lo and Hi.
type Box struct {
	Lo, Hi grid.Point
}

// NewBox validates and builds a box over u.
func NewBox(u *grid.Universe, lo, hi grid.Point) (Box, error) {
	if !u.Contains(lo) || !u.Contains(hi) {
		return Box{}, fmt.Errorf("query: box corners %v, %v outside %v", lo, hi, u)
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Box{}, fmt.Errorf("query: inverted box in dimension %d", i+1)
		}
	}
	return Box{Lo: lo.Clone(), Hi: hi.Clone()}, nil
}

// Contains reports whether cell p lies in the box.
func (b Box) Contains(p grid.Point) bool {
	for i := range p {
		if p[i] < b.Lo[i] || p[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Volume returns the number of cells in the box.
func (b Box) Volume() uint64 {
	v := uint64(1)
	for i := range b.Lo {
		v *= uint64(b.Hi[i]-b.Lo[i]) + 1
	}
	return v
}

// Interval is a half-open range [Lo, Hi) of curve indices.
type Interval struct {
	Lo, Hi uint64
}

// Len returns the number of indices in the interval.
func (iv Interval) Len() uint64 { return iv.Hi - iv.Lo }

// DecomposeBox expresses the set of curve indices of the cells in the box
// as a minimal sorted list of disjoint intervals.
//
// Hierarchical curves (Z, Hilbert, Gray — where every aligned power-of-two
// subcube occupies one aligned contiguous index range) use a recursive
// subcube decomposition costing O(output · d·k); the simple and snake
// curves use row-run decomposition; any other curve falls back to
// enumerating the box's cells, which is always correct but costs
// O(volume · log volume).
func DecomposeBox(c curve.Curve, b Box) []Interval {
	var ivs []Interval
	switch c.(type) {
	case *curve.Z, *curve.Hilbert, *curve.Gray:
		ivs = hierarchicalDecompose(c, b)
	case *curve.Simple, *curve.Snake:
		ivs = rowDecompose(c, b)
	default:
		ivs = bruteDecompose(c, b)
	}
	return MergeIntervals(ivs)
}

// hierarchicalDecompose recursively splits the universe into aligned
// subcubes. A subcube disjoint from the box contributes nothing; one fully
// inside contributes its whole (contiguous, aligned) index range; a
// straddling subcube is split into its 2^d children.
func hierarchicalDecompose(c curve.Curve, b Box) []Interval {
	u := c.Universe()
	d := u.D()
	var out []Interval
	corner := u.NewPoint()
	var recurse func(origin grid.Point, level int)
	recurse = func(origin grid.Point, level int) {
		size := u.Side() >> uint(level) // subcube side length
		// Classify subcube vs box.
		inside := true
		for i := 0; i < d; i++ {
			subLo := origin[i]
			subHi := origin[i] + size - 1
			if subHi < b.Lo[i] || subLo > b.Hi[i] {
				return // disjoint
			}
			if subLo < b.Lo[i] || subHi > b.Hi[i] {
				inside = false
			}
		}
		if inside {
			cells := uint64(1) << uint(d*(u.K()-level))
			copy(corner, origin)
			idx := c.Index(corner)
			lo := idx / cells * cells // aligned range containing the corner
			out = append(out, Interval{Lo: lo, Hi: lo + cells})
			return
		}
		if size == 1 {
			// Straddling is impossible for single cells; handled above.
			return
		}
		half := size / 2
		child := origin.Clone()
		for mask := 0; mask < 1<<uint(d); mask++ {
			for i := 0; i < d; i++ {
				child[i] = origin[i]
				if mask&(1<<uint(i)) != 0 {
					child[i] += half
				}
			}
			recurse(child, level+1)
		}
	}
	recurse(u.NewPoint(), 0)
	return out
}

// rowDecompose handles the simple and snake curves: every run of cells
// along dimension 1 with the higher coordinates fixed is contiguous on the
// curve, so the box decomposes into one interval per higher-coordinate
// combination.
func rowDecompose(c curve.Curve, b Box) []Interval {
	u := c.Universe()
	d := u.D()
	out := make([]Interval, 0, 16)
	p := b.Lo.Clone()
	for {
		// Run along dimension 1 from Lo[0] to Hi[0] at the current higher
		// coordinates: its curve indices are contiguous (possibly reversed
		// for the snake), so take min/max of the endpoints.
		p[0] = b.Lo[0]
		a := c.Index(p)
		p[0] = b.Hi[0]
		z := c.Index(p)
		if a > z {
			a, z = z, a
		}
		out = append(out, Interval{Lo: a, Hi: z + 1})
		// Odometer over dimensions 2..d within the box.
		i := 1
		for ; i < d; i++ {
			p[i]++
			if p[i] <= b.Hi[i] {
				break
			}
			p[i] = b.Lo[i]
		}
		if i == d {
			return out
		}
	}
}

// bruteDecompose enumerates the box's cells, sorts their curve indices and
// merges consecutive runs. Correct for any curve.
func bruteDecompose(c curve.Curve, b Box) []Interval {
	u := c.Universe()
	d := u.D()
	keys := make([]uint64, 0, b.Volume())
	p := b.Lo.Clone()
	for {
		keys = append(keys, c.Index(p))
		i := 0
		for ; i < d; i++ {
			p[i]++
			if p[i] <= b.Hi[i] {
				break
			}
			p[i] = b.Lo[i]
		}
		if i == d {
			break
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []Interval
	for i := 0; i < len(keys); {
		j := i + 1
		for j < len(keys) && keys[j] == keys[j-1]+1 {
			j++
		}
		out = append(out, Interval{Lo: keys[i], Hi: keys[j-1] + 1})
		i = j
	}
	return out
}

// MergeIntervals sorts and coalesces touching or overlapping intervals in
// place, returning the canonical sorted disjoint form. It is the shared
// normalizer for decompositions, degraded-query dark spans, and the
// service layer's cross-shard merges.
func MergeIntervals(ivs []Interval) []Interval {
	if len(ivs) <= 1 {
		return ivs
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Lo < ivs[j].Lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// IntervalsContain reports whether key lies in any of the sorted, disjoint
// intervals, by binary search.
func IntervalsContain(ivs []Interval, key uint64) bool {
	i := sort.Search(len(ivs), func(i int) bool { return ivs[i].Hi > key })
	return i < len(ivs) && ivs[i].Lo <= key
}
