package query

import (
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
)

// TestDecomposeSingleCell: a 1-cell box decomposes, for every curve, into
// exactly one interval of length 1 located at that cell's curve index.
func TestDecomposeSingleCell(t *testing.T) {
	u := grid.MustNew(2, 3)
	for _, c := range allCurves(t, u) {
		u.Cells(func(_ uint64, p grid.Point) bool {
			b, err := NewBox(u, p, p)
			if err != nil {
				t.Fatal(err)
			}
			ivs := DecomposeBox(c, b)
			if len(ivs) != 1 || ivs[0].Len() != 1 || ivs[0].Lo != c.Index(p) {
				t.Fatalf("%s: single cell %v decomposes to %v, index %d",
					c.Name(), p, ivs, c.Index(p))
			}
			return true
		})
	}
}

// TestDecomposeBoundaryBoxes exercises boxes hugging the universe boundary:
// faces, edges, corners, and one-cell-thick slabs through the middle. These
// are the shapes where off-by-one errors in the subcube and row-run
// decompositions would hide.
func TestDecomposeBoundaryBoxes(t *testing.T) {
	for _, dk := range [][2]int{{2, 3}, {3, 2}} {
		u := grid.MustNew(dk[0], dk[1])
		d := u.D()
		max := uint32(u.Side() - 1)
		var boxes []Box
		add := func(lo, hi grid.Point) {
			b, err := NewBox(u, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			boxes = append(boxes, b)
		}
		full := func(v uint32) grid.Point {
			p := u.NewPoint()
			for i := range p {
				p[i] = v
			}
			return p
		}
		// Corner cells.
		add(full(0), full(0))
		add(full(max), full(max))
		// Each face: one-cell-thick slab pinned at either wall.
		for i := 0; i < d; i++ {
			for _, wall := range []uint32{0, max} {
				lo, hi := full(0), full(max)
				lo[i], hi[i] = wall, wall
				add(lo, hi)
			}
			// Interior slab through the middle.
			lo, hi := full(0), full(max)
			lo[i], hi[i] = max/2, max/2
			add(lo, hi)
			// Edge along dimension i: all other dims pinned to the far wall.
			lo, hi = full(max), full(max)
			lo[i] = 0
			add(lo, hi)
		}
		// Box touching opposite corners minus one cell.
		add(full(0), full(max-1))
		add(full(1), full(max))
		for _, c := range allCurves(t, u) {
			for _, b := range boxes {
				intervalsCover(t, c, b, DecomposeBox(c, b))
			}
		}
	}
}

// TestRowDecomposePredictedCounts pins the analytic interval count of the
// row-major curves: a full-width box is a single contiguous run, and a box
// excluding BOTH walls of dimension 1 yields exactly one interval per
// (higher-coordinate) row — no run reaches its strip boundary, so runs from
// different rows cannot touch. (A snake box touching a turning wall merges
// adjacent reversed rows, so wall exclusion is the precise precondition.)
func TestRowDecomposePredictedCounts(t *testing.T) {
	u := grid.MustNew(2, 3)
	for _, name := range []string{"simple", "snake"} {
		c, err := curveByName(t, name, u)
		if err != nil {
			t.Fatal(err)
		}
		// Full-width rows y ∈ [2, 5]: one interval.
		b, err := NewBox(u, u.MustPoint(0, 2), u.MustPoint(7, 5))
		if err != nil {
			t.Fatal(err)
		}
		if ivs := DecomposeBox(c, b); len(ivs) != 1 {
			t.Errorf("%s full-width: %v", name, ivs)
		}
		// Width-3 box over 4 rows: exactly 4 intervals of length 3.
		b, err = NewBox(u, u.MustPoint(2, 1), u.MustPoint(4, 4))
		if err != nil {
			t.Fatal(err)
		}
		ivs := DecomposeBox(c, b)
		if len(ivs) != 4 {
			t.Fatalf("%s width-3: %d intervals %v", name, len(ivs), ivs)
		}
		for _, iv := range ivs {
			if iv.Len() != 3 {
				t.Errorf("%s: row interval %v has length %d", name, iv, iv.Len())
			}
		}
	}
	// In 3 dimensions the count is the product of the higher-dimension
	// extents when the box excludes both walls of dimension 1.
	u3 := grid.MustNew(3, 2)
	for _, name := range []string{"simple", "snake"} {
		c, err := curveByName(t, name, u3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewBox(u3, u3.MustPoint(1, 1, 0), u3.MustPoint(2, 3, 2))
		if err != nil {
			t.Fatal(err)
		}
		if ivs := DecomposeBox(c, b); len(ivs) != 3*3 {
			t.Errorf("%s 3-d: %d intervals, want 9", name, len(ivs))
		}
	}
	// And the snake wall-merge itself, pinned: a box including the turning
	// wall x=0 over r reversed-adjacent rows merges every left-wall turn.
	cSnake, err := curveByName(t, "snake", u)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBox(u, u.MustPoint(0, 2), u.MustPoint(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Rows 2..5; turns at x=0 happen between rows (3,4) and (5,6) — only
	// the (3,4) turn is interior to the box, merging one pair: 3 intervals.
	if ivs := DecomposeBox(cSnake, b); len(ivs) != 3 {
		t.Errorf("snake wall box: %d intervals %v, want 3", len(ivs), ivs)
	}
}

// TestIndexEdgeCases drives the point index through the degenerate shapes:
// empty index, duplicate points, single-cell and full-universe queries.
func TestIndexEdgeCases(t *testing.T) {
	u := grid.MustNew(2, 3)
	for _, c := range allCurves(t, u) {
		// Empty index: every query answers empty, no panic.
		ix, err := Build(c, nil)
		if err != nil {
			t.Fatalf("%s: empty build: %v", c.Name(), err)
		}
		whole, err := NewBox(u, u.MustPoint(0, 0), u.MustPoint(7, 7))
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := ix.Range(whole); len(got) != 0 {
			t.Fatalf("%s: empty index returned %v", c.Name(), got)
		}
		if n := ix.Count(whole); n != 0 {
			t.Fatalf("%s: empty index count %d", c.Name(), n)
		}
		// Duplicates: all copies are returned.
		p := u.MustPoint(3, 4)
		ix, err = Build(c, []grid.Point{p, p, p})
		if err != nil {
			t.Fatal(err)
		}
		cellBox, err := NewBox(u, p, p)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := ix.Range(cellBox); len(got) != 3 {
			t.Fatalf("%s: %d duplicates returned", c.Name(), len(got))
		}
		if n := ix.Count(whole); n != 3 {
			t.Fatalf("%s: full-universe count %d", c.Name(), n)
		}
		// A disjoint single cell finds nothing.
		other, err := NewBox(u, u.MustPoint(0, 0), u.MustPoint(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := ix.Range(other); len(got) != 0 {
			t.Fatalf("%s: disjoint cell returned %v", c.Name(), got)
		}
	}
}

func curveByName(t *testing.T, name string, u *grid.Universe) (curve.Curve, error) {
	t.Helper()
	return curve.ByName(name, u, 13)
}
