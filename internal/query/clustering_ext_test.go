// External test package: internal/cluster now imports internal/query (the
// router speaks curve intervals), so a test crossing the two must live
// outside the query package to avoid a test-only import cycle.
package query_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
)

func TestIntervalCountMatchesClusteringMetric(t *testing.T) {
	// |DecomposeBox| is exactly the Moon et al. cluster count of the region.
	u := grid.MustNew(2, 3)
	for _, name := range curve.Names() {
		c, err := curve.ByName(name, u, 13)
		if err != nil {
			t.Fatal(err)
		}
		b, err := query.NewBox(u, u.MustPoint(2, 1), u.MustPoint(5, 4))
		if err != nil {
			t.Fatal(err)
		}
		runs, err := cluster.Clusters(c, b.Lo, []uint32{4, 4})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(query.DecomposeBox(c, b)); got != runs {
			t.Errorf("%s: %d intervals, clustering metric %d", c.Name(), got, runs)
		}
	}
}
