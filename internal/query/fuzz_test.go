package query

import (
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
)

// FuzzDecompose fuzzes DecomposeBox over arbitrary universe shapes, boxes
// and curves, asserting the defining property of a decomposition: the
// returned intervals are sorted, disjoint, non-touching (minimal), and their
// union is EXACTLY the set of curve indices of the box's cells — every cell
// inside the box is covered and every index outside the box is not. This
// cross-checks all three decomposition strategies (hierarchical subcube,
// row-run, brute-force) against the same oracle.
func FuzzDecompose(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint64(7), uint64(99))
	f.Add(uint8(3), uint8(2), uint64(0), uint64(0))
	f.Add(uint8(1), uint8(6), uint64(41), uint64(12345))
	f.Fuzz(func(t *testing.T, dRaw, kRaw uint8, loRaw, hiRaw uint64) {
		d := 1 + int(dRaw)%3
		k := 1 + int(kRaw)%3
		u := grid.MustNew(d, k)
		lo := u.NewPoint()
		hi := u.NewPoint()
		a, b := loRaw, hiRaw
		for i := 0; i < d; i++ {
			x := uint32(a % uint64(u.Side()))
			y := uint32(b % uint64(u.Side()))
			a /= uint64(u.Side())
			b = b/uint64(u.Side()) + 0x9e3779b9
			if x > y {
				x, y = y, x
			}
			lo[i], hi[i] = x, y
		}
		box, err := NewBox(u, lo, hi)
		if err != nil {
			t.Fatalf("NewBox(%v, %v): %v", lo, hi, err)
		}
		p := u.NewPoint()
		for _, name := range curve.Names() {
			c, err := curve.ByName(name, u, int64(loRaw%64)+1)
			if err != nil {
				t.Fatal(err)
			}
			ivs := DecomposeBox(c, box)
			// Structure: sorted, disjoint, with gaps between intervals.
			var total uint64
			for i, iv := range ivs {
				if iv.Lo >= iv.Hi || iv.Hi > u.N() {
					t.Fatalf("%s box %v-%v: bad interval %+v", name, lo, hi, iv)
				}
				if i > 0 && iv.Lo <= ivs[i-1].Hi {
					t.Fatalf("%s box %v-%v: intervals %+v, %+v not separated", name, lo, hi, ivs[i-1], iv)
				}
				total += iv.Len()
			}
			if total != box.Volume() {
				t.Fatalf("%s box %v-%v: intervals cover %d indices, box has %d cells",
					name, lo, hi, total, box.Volume())
			}
			// Exact tiling: index ∈ intervals ⇔ cell ∈ box, every index.
			for idx := uint64(0); idx < u.N(); idx++ {
				c.Point(idx, p)
				if got, want := covered(ivs, idx), box.Contains(p); got != want {
					t.Fatalf("%s box %v-%v: index %d (cell %v) covered=%v inBox=%v",
						name, lo, hi, idx, p, got, want)
				}
			}
		}
	})
}

// covered reports whether idx lies in one of the sorted intervals.
func covered(ivs []Interval, idx uint64) bool {
	for _, iv := range ivs {
		if idx >= iv.Lo && idx < iv.Hi {
			return true
		}
	}
	return false
}
