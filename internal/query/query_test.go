package query

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
)

func allCurves(t testing.TB, u *grid.Universe) []curve.Curve {
	t.Helper()
	var cs []curve.Curve
	for _, name := range curve.Names() {
		c, err := curve.ByName(name, u, 13)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	return cs
}

func TestNewBoxValidation(t *testing.T) {
	u := grid.MustNew(2, 3)
	if _, err := NewBox(u, u.MustPoint(1, 1), u.MustPoint(3, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewBox(u, u.MustPoint(5, 1), u.MustPoint(3, 5)); err == nil {
		t.Fatal("inverted box accepted")
	}
	if _, err := NewBox(u, grid.Point{1}, u.MustPoint(3, 5)); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestBoxBasics(t *testing.T) {
	u := grid.MustNew(2, 3)
	b, err := NewBox(u, u.MustPoint(1, 2), u.MustPoint(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if b.Volume() != 9 {
		t.Fatalf("volume %d", b.Volume())
	}
	if !b.Contains(u.MustPoint(2, 3)) || b.Contains(u.MustPoint(0, 3)) || b.Contains(u.MustPoint(2, 5)) {
		t.Fatal("Contains wrong")
	}
}

// intervalsCover checks that the intervals exactly cover the box's cell
// keys: disjoint, sorted, total length = volume, and every cell key inside.
func intervalsCover(t *testing.T, c curve.Curve, b Box, ivs []Interval) {
	t.Helper()
	var total uint64
	for i, iv := range ivs {
		if iv.Lo >= iv.Hi {
			t.Fatalf("empty interval %v", iv)
		}
		if i > 0 && ivs[i-1].Hi >= iv.Lo {
			t.Fatalf("intervals not disjoint/merged: %v then %v", ivs[i-1], iv)
		}
		total += iv.Len()
	}
	if total != b.Volume() {
		t.Fatalf("intervals cover %d cells, box has %d", total, b.Volume())
	}
	inSome := func(key uint64) bool {
		for _, iv := range ivs {
			if key >= iv.Lo && key < iv.Hi {
				return true
			}
		}
		return false
	}
	u := c.Universe()
	u.Cells(func(_ uint64, p grid.Point) bool {
		if b.Contains(p) != inSome(c.Index(p)) {
			t.Fatalf("curve %s: cell %v coverage mismatch", c.Name(), p)
		}
		return true
	})
}

func TestDecomposeBoxAllCurvesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, dk := range [][2]int{{1, 4}, {2, 3}, {3, 2}} {
		u := grid.MustNew(dk[0], dk[1])
		for _, c := range allCurves(t, u) {
			for trial := 0; trial < 25; trial++ {
				lo := u.NewPoint()
				hi := u.NewPoint()
				for i := range lo {
					a := uint32(rng.Intn(int(u.Side())))
					b := uint32(rng.Intn(int(u.Side())))
					if a > b {
						a, b = b, a
					}
					lo[i], hi[i] = a, b
				}
				b, err := NewBox(u, lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				intervalsCover(t, c, b, DecomposeBox(c, b))
			}
		}
	}
}

func TestDecomposeMatchesBruteForAllCurves(t *testing.T) {
	// The specialized decompositions must agree interval-for-interval with
	// the always-correct brute enumeration.
	u := grid.MustNew(2, 4)
	b, err := NewBox(u, u.MustPoint(3, 2), u.MustPoint(12, 9))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range allCurves(t, u) {
		fast := DecomposeBox(c, b)
		brute := MergeIntervals(bruteDecompose(c, b))
		if len(fast) != len(brute) {
			t.Fatalf("%s: %d intervals, brute %d", c.Name(), len(fast), len(brute))
		}
		for i := range fast {
			if fast[i] != brute[i] {
				t.Fatalf("%s: interval %d = %v, brute %v", c.Name(), i, fast[i], brute[i])
			}
		}
	}
}

func TestDecomposeWholeUniverseIsOneInterval(t *testing.T) {
	u := grid.MustNew(3, 2)
	lo := u.NewPoint()
	hi := u.MustPoint(3, 3, 3)
	b, err := NewBox(u, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range allCurves(t, u) {
		ivs := DecomposeBox(c, b)
		if len(ivs) != 1 || ivs[0].Lo != 0 || ivs[0].Hi != u.N() {
			t.Errorf("%s: whole universe decomposes to %v", c.Name(), ivs)
		}
	}
}

func TestMergeIntervals(t *testing.T) {
	got := MergeIntervals([]Interval{{5, 7}, {0, 2}, {2, 4}, {6, 9}, {12, 13}})
	want := []Interval{{0, 4}, {5, 9}, {12, 13}}
	if len(got) != len(want) {
		t.Fatalf("merged = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged = %v, want %v", got, want)
		}
	}
	if out := MergeIntervals(nil); len(out) != 0 {
		t.Fatal("merge nil")
	}
}

func randomPoints(u *grid.Universe, n int, seed int64) []grid.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]grid.Point, n)
	for i := range pts {
		p := u.NewPoint()
		for j := range p {
			p[j] = uint32(rng.Intn(int(u.Side())))
		}
		pts[i] = p
	}
	return pts
}

func TestRangeQueryMatchesLinearScan(t *testing.T) {
	u := grid.MustNew(2, 4)
	pts := randomPoints(u, 400, 77)
	b, err := NewBox(u, u.MustPoint(2, 3), u.MustPoint(11, 13))
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, p := range pts {
		if b.Contains(p) {
			want++
		}
	}
	for _, c := range allCurves(t, u) {
		ix, err := Build(c, pts)
		if err != nil {
			t.Fatal(err)
		}
		got, st := ix.Range(b)
		if len(got) != want {
			t.Errorf("%s: range returned %d, scan %d", c.Name(), len(got), want)
		}
		for _, p := range got {
			if !b.Contains(p) {
				t.Errorf("%s: returned point %v outside box", c.Name(), p)
			}
		}
		if st.Matched != len(got) || st.Scanned != st.Matched || st.Intervals == 0 {
			t.Errorf("%s: bad stats %+v", c.Name(), st)
		}
		if ix.Count(b) != want {
			t.Errorf("%s: Count = %d, want %d", c.Name(), ix.Count(b), want)
		}
	}
}

func TestBuildRejectsOutsidePoints(t *testing.T) {
	u := grid.MustNew(2, 2)
	z := curve.NewZ(u)
	if _, err := Build(z, []grid.Point{{9, 0}}); err == nil {
		t.Fatal("outside point accepted")
	}
}

func TestNearestMatchesLinearScan(t *testing.T) {
	u := grid.MustNew(2, 4)
	pts := randomPoints(u, 60, 3)
	rng := rand.New(rand.NewSource(8))
	for _, c := range allCurves(t, u) {
		ix, err := Build(c, pts)
		if err != nil {
			t.Fatal(err)
		}
		if ix.Len() != 60 || ix.Curve() != c {
			t.Fatal("accessors wrong")
		}
		for trial := 0; trial < 40; trial++ {
			q := u.NewPoint()
			for j := range q {
				q[j] = uint32(rng.Intn(int(u.Side())))
			}
			got, gotDist, err := ix.Nearest(q)
			if err != nil {
				t.Fatal(err)
			}
			best := math.Inf(1)
			for _, p := range pts {
				if d := grid.Euclidean(q, p); d < best {
					best = d
				}
			}
			if math.Abs(gotDist-best) > 1e-9 {
				t.Fatalf("%s: nearest(%v) = %v at %v, want distance %v", c.Name(), q, got, gotDist, best)
			}
			if grid.Euclidean(q, got) != gotDist {
				t.Fatalf("reported distance inconsistent")
			}
		}
	}
}

func TestNearestSparse(t *testing.T) {
	// A single far-away point: the radius doubling must reach it.
	u := grid.MustNew(2, 5)
	z := curve.NewZ(u)
	ix, err := Build(z, []grid.Point{u.MustPoint(31, 31)})
	if err != nil {
		t.Fatal(err)
	}
	p, dist, err := ix.Nearest(u.MustPoint(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(u.MustPoint(31, 31)) || math.Abs(dist-math.Sqrt(2*31.0*31.0)) > 1e-9 {
		t.Fatalf("nearest = %v at %v", p, dist)
	}
}

func TestKNearestMatchesLinearScan(t *testing.T) {
	u := grid.MustNew(2, 4)
	pts := randomPoints(u, 80, 21)
	rng := rand.New(rand.NewSource(4))
	for _, c := range allCurves(t, u) {
		ix, err := Build(c, pts)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			q := u.NewPoint()
			for j := range q {
				q[j] = uint32(rng.Intn(int(u.Side())))
			}
			k := 1 + rng.Intn(10)
			got, dists, err := ix.KNearest(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != k || len(dists) != k {
				t.Fatalf("%s: got %d points for k=%d", c.Name(), len(got), k)
			}
			// Reference: sort all distances.
			all := make([]float64, len(pts))
			for i, p := range pts {
				all[i] = grid.Euclidean(q, p)
			}
			sortFloats(all)
			for i := 0; i < k; i++ {
				if math.Abs(dists[i]-all[i]) > 1e-9 {
					t.Fatalf("%s: k-nn dist[%d] = %v, want %v", c.Name(), i, dists[i], all[i])
				}
				if grid.Euclidean(q, got[i]) != dists[i] {
					t.Fatalf("reported distance inconsistent")
				}
				if i > 0 && dists[i] < dists[i-1] {
					t.Fatalf("results not sorted")
				}
			}
		}
	}
}

func TestKNearestClampsAndValidates(t *testing.T) {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	ix, err := Build(z, randomPoints(u, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.KNearest(u.MustPoint(0, 0), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("clamped k returned %d", len(got))
	}
	if _, _, err := ix.KNearest(u.MustPoint(0, 0), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	empty, err := Build(z, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := empty.KNearest(u.MustPoint(0, 0), 1); !errors.Is(err, ErrEmptyIndex) {
		t.Fatalf("empty index: err = %v, want ErrEmptyIndex", err)
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestNearestEmpty(t *testing.T) {
	u := grid.MustNew(2, 2)
	ix, err := Build(curve.NewZ(u), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Nearest(u.MustPoint(0, 0)); !errors.Is(err, ErrEmptyIndex) {
		t.Fatalf("nearest on empty index: err = %v, want ErrEmptyIndex", err)
	}
}

func TestHilbertBeatsZOnSquareBoxes(t *testing.T) {
	// Database-facing consequence of Moon et al.'s analysis: on square
	// boxes the Hilbert decomposition produces (on average) fewer intervals
	// than the Z curve's. (Row-major curves are *not* dominated here — a
	// q×q box is only q row-runs versus ~perimeter/2 for Hilbert — which is
	// exactly why clustering and NN-stretch are different metrics; the
	// ext-cluster experiment reports both.)
	u := grid.MustNew(2, 5)
	hil := curve.NewHilbert(u)
	zc := curve.NewZ(u)
	rng := rand.New(rand.NewSource(55))
	var sumH, sumZ int
	for trial := 0; trial < 50; trial++ {
		size := uint32(4 + rng.Intn(8))
		x := uint32(rng.Intn(int(u.Side() - size)))
		y := uint32(rng.Intn(int(u.Side() - size)))
		b, err := NewBox(u, u.MustPoint(x, y), u.MustPoint(x+size-1, y+size-1))
		if err != nil {
			t.Fatal(err)
		}
		sumH += len(DecomposeBox(hil, b))
		sumZ += len(DecomposeBox(zc, b))
	}
	if sumH >= sumZ {
		t.Errorf("hilbert intervals %d not < z intervals %d over square boxes", sumH, sumZ)
	}
}
