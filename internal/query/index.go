package query

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/curve"
	"repro/internal/grid"
)

// ErrEmptyIndex is the sentinel wrapped by every query that cannot be
// answered because no points are indexed; test with errors.Is.
var ErrEmptyIndex = errors.New("query: empty index")

// Index is a static spatial index: points sorted by their curve key.
// Multiple points may share a cell.
type Index struct {
	c    curve.Curve
	keys []uint64     // sorted, one per point
	pts  []grid.Point // aligned with keys
}

// Build constructs the index over a point set. The points are cloned; the
// input slice is not retained.
func Build(c curve.Curve, pts []grid.Point) (*Index, error) {
	u := c.Universe()
	ix := &Index{
		c:    c,
		keys: make([]uint64, len(pts)),
		pts:  make([]grid.Point, len(pts)),
	}
	order := make([]int, len(pts))
	tmp := make([]uint64, len(pts))
	for i, p := range pts {
		if !u.Contains(p) {
			return nil, fmt.Errorf("query: point %v outside %v", p, u)
		}
		tmp[i] = c.Index(p)
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return tmp[order[a]] < tmp[order[b]] })
	for slot, i := range order {
		ix.keys[slot] = tmp[i]
		ix.pts[slot] = pts[i].Clone()
	}
	return ix, nil
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return len(ix.keys) }

// Curve returns the ordering curve.
func (ix *Index) Curve() curve.Curve { return ix.c }

// QueryStats reports the work a range query performed.
type QueryStats struct {
	Intervals int // curve intervals the box decomposed into
	Scanned   int // points touched by interval scans
	Matched   int // points returned
}

// Range returns all indexed points inside the box, along with the work
// statistics. The box is decomposed into curve intervals, each answered by
// binary search on the sorted keys; because the decomposition covers
// exactly the box's cells, no post-filtering is needed — Scanned equals
// Matched, and Intervals measures the curve's clustering quality.
func (ix *Index) Range(b Box) ([]grid.Point, QueryStats) {
	var out []grid.Point
	var st QueryStats
	for _, iv := range DecomposeBox(ix.c, b) {
		st.Intervals++
		lo := sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] >= iv.Lo })
		for i := lo; i < len(ix.keys) && ix.keys[i] < iv.Hi; i++ {
			st.Scanned++
			out = append(out, ix.pts[i])
		}
	}
	st.Matched = len(out)
	return out, st
}

// Count returns the number of indexed points inside the box.
func (ix *Index) Count(b Box) int {
	var total int
	for _, iv := range DecomposeBox(ix.c, b) {
		lo := sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] >= iv.Lo })
		hi := sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] >= iv.Hi })
		total += hi - lo
	}
	return total
}

// KNearest returns the k indexed points closest to q in Euclidean
// distance, sorted nearest-first (ties broken arbitrarily). If fewer than k
// points are indexed it returns all of them. It errors on an empty index or
// k < 1. The search grows boxes of geometrically increasing radius around
// q, exactly like Nearest, stopping once the k-th best distance is covered
// by the searched radius.
func (ix *Index) KNearest(q grid.Point, k int) ([]grid.Point, []float64, error) {
	if ix.Len() == 0 {
		return nil, nil, fmt.Errorf("k-nearest: %w", ErrEmptyIndex)
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("query: k = %d", k)
	}
	if k > ix.Len() {
		k = ix.Len()
	}
	u := ix.c.Universe()
	d := u.D()
	maxRadius := int64(u.Side())
	type cand struct {
		p    grid.Point
		dist float64
	}
	var best []cand
	for radius := int64(1); ; radius *= 2 {
		lo := u.NewPoint()
		hi := u.NewPoint()
		for i := 0; i < d; i++ {
			l := int64(q[i]) - radius
			if l < 0 {
				l = 0
			}
			h := int64(q[i]) + radius
			if h > int64(u.Side())-1 {
				h = int64(u.Side()) - 1
			}
			lo[i] = uint32(l)
			hi[i] = uint32(h)
		}
		pts, _ := ix.Range(Box{Lo: lo, Hi: hi})
		best = best[:0]
		for _, p := range pts {
			best = append(best, cand{p: p, dist: grid.Euclidean(q, p)})
		}
		sort.Slice(best, func(i, j int) bool { return best[i].dist < best[j].dist })
		if len(best) > k {
			best = best[:k]
		}
		done := len(best) == k && best[len(best)-1].dist <= float64(radius)
		if done || radius >= maxRadius {
			out := make([]grid.Point, len(best))
			dists := make([]float64, len(best))
			for i, c := range best {
				out[i] = c.p.Clone()
				dists[i] = c.dist
			}
			return out, dists, nil
		}
	}
}

// NearestStats reports the work of one Nearest/KNearest call.
type NearestStats struct {
	Rounds    int // box expansions performed
	Intervals int // total curve intervals examined
	Scanned   int // total points touched
}

// NearestWithStats is Nearest instrumented with work counters — the
// measurements behind the neighbor-finding comparison of Chen & Chang ([5]
// in the paper's related work), reproduced by experiment ext-knn.
func (ix *Index) NearestWithStats(q grid.Point) (grid.Point, float64, NearestStats, error) {
	var st NearestStats
	p, dist, err := ix.nearest(q, &st)
	return p, dist, st, err
}

// Nearest returns an indexed point at minimal Euclidean distance from q
// (ties broken arbitrarily), or an error when the index is empty. It
// searches boxes of geometrically growing radius around q; once a candidate
// at distance r is known and the searched box covers radius ≥ r, no closer
// point can exist outside it.
func (ix *Index) Nearest(q grid.Point) (grid.Point, float64, error) {
	return ix.nearest(q, nil)
}

func (ix *Index) nearest(q grid.Point, st *NearestStats) (grid.Point, float64, error) {
	if ix.Len() == 0 {
		return nil, 0, fmt.Errorf("nearest: %w", ErrEmptyIndex)
	}
	u := ix.c.Universe()
	d := u.D()
	maxRadius := int64(u.Side()) // covers the whole universe
	var best grid.Point
	bestDist := math.Inf(1)
	for radius := int64(1); ; radius *= 2 {
		lo := u.NewPoint()
		hi := u.NewPoint()
		for i := 0; i < d; i++ {
			l := int64(q[i]) - radius
			if l < 0 {
				l = 0
			}
			h := int64(q[i]) + radius
			if h > int64(u.Side())-1 {
				h = int64(u.Side()) - 1
			}
			lo[i] = uint32(l)
			hi[i] = uint32(h)
		}
		pts, qs := ix.Range(Box{Lo: lo, Hi: hi})
		if st != nil {
			st.Rounds++
			st.Intervals += qs.Intervals
			st.Scanned += qs.Scanned
		}
		for _, p := range pts {
			if dist := grid.Euclidean(q, p); dist < bestDist {
				bestDist = dist
				best = p
			}
		}
		// A candidate at distance ≤ radius cannot be beaten by any point
		// outside the searched box (all such points are > radius away).
		if best != nil && bestDist <= float64(radius) {
			return best.Clone(), bestDist, nil
		}
		if radius >= maxRadius {
			// Box covered the whole universe.
			return best.Clone(), bestDist, nil
		}
	}
}
