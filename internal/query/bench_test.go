package query

import (
	"fmt"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
)

// BenchmarkDecomposeAblation compares the specialized box decompositions
// against the always-correct brute enumeration — the design choice called
// out in DESIGN.md (hierarchical subcube recursion for Z/Hilbert/Gray,
// row runs for simple/snake).
func BenchmarkDecomposeAblation(b *testing.B) {
	u := grid.MustNew(2, 9) // 512×512
	box, err := NewBox(u, u.MustPoint(100, 200), u.MustPoint(227, 327))
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"z", "hilbert", "simple"} {
		c, err := curve.ByName(name, u, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("fast/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkIvs = DecomposeBox(c, box)
			}
		})
		b.Run("brute/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkIvs = MergeIntervals(bruteDecompose(c, box))
			}
		})
	}
}

// BenchmarkRangeQuery measures end-to-end range queries per curve.
func BenchmarkRangeQuery(b *testing.B) {
	u := grid.MustNew(2, 9)
	pts := randomPointsBench(u, 50000, 3)
	box, err := NewBox(u, u.MustPoint(100, 200), u.MustPoint(163, 263))
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"hilbert", "z", "simple"} {
		c, err := curve.ByName(name, u, 1)
		if err != nil {
			b.Fatal(err)
		}
		ix, err := Build(c, pts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got, _ := ix.Range(box)
				sinkLen = len(got)
			}
		})
	}
}

// BenchmarkNearest measures nearest-neighbor lookups through the index.
func BenchmarkNearest(b *testing.B) {
	u := grid.MustNew(2, 9)
	pts := randomPointsBench(u, 20000, 4)
	for _, name := range []string{"hilbert", "z"} {
		c, err := curve.ByName(name, u, 1)
		if err != nil {
			b.Fatal(err)
		}
		ix, err := Build(c, pts)
		if err != nil {
			b.Fatal(err)
		}
		q := u.MustPoint(317, 41)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.Nearest(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func randomPointsBench(u *grid.Universe, n int, seed int64) []grid.Point {
	pts := randomPoints(u, n, seed)
	return pts
}

func ExampleDecomposeBox() {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	box, _ := NewBox(u, u.MustPoint(0, 0), u.MustPoint(3, 3))
	fmt.Println(DecomposeBox(z, box))
	// Output: [{0 16}]
}

var (
	sinkIvs []Interval
	sinkLen int
)
