package curve

import (
	"sync"

	"repro/internal/bits"
	"repro/internal/grid"
)

// Table-driven Hilbert evaluation in the style of Hamilton & Rau-Chaplin's
// compact Hilbert indices: instead of Skilling's bit-serial rotate/reflect
// loop, encode one d-bit level per step through a precomputed state machine.
// A state is the signed bit-permutation (axis relabeling + reflections) the
// recursion applies inside the current orthant; enc[state][tuple] yields the
// level's curve digit and the child state in one lookup.
//
// Rather than hard-coding the tables for the specific curve variant, the
// machine is derived empirically from the package's own scalar
// implementation: the base orthant order is probed at k=1, the per-orthant
// sub-transforms at k=2, and the self-similarity hypothesis (each
// sub-transform is a signed permutation, and transitions are k-independent)
// is verified by full enumeration against the scalar code at several k
// before the table is used. If any probe or verification step fails, the
// builder returns nil and every batch entry point falls back to the scalar
// loop — correctness never depends on the derivation succeeding.

// maxHilbertTableDim bounds the table machinery: 2^d-entry rows and
// potentially hundreds of states make the tables impractical past a few
// dimensions, and the sweeps only reach d ≤ 3 anyway.
const maxHilbertTableDim = 6

// maxHilbertStates caps the BFS over reachable states; the true count is
// far smaller (4 at d=2, 24 at d=3), so hitting the cap means the
// self-similarity hypothesis failed.
const maxHilbertStates = 1 << 12

// maxHilbertVerifyCells bounds the construction-time exhaustive
// verification sweep per k.
const maxHilbertVerifyCells = 1 << 16

type hilbertTable struct {
	d   int
	enc [][]uint32 // enc[state][tuple] = nextState<<d | digit
	dec [][]uint32 // dec[state][digit] = nextState<<d | tuple
}

// encode maps a Morton key (k levels of d-bit groups, most significant
// level first) to the Hilbert key.
func (ht *hilbertTable) encode(mkey uint64, k int) uint64 {
	d := uint(ht.d)
	dmask := uint64(1)<<d - 1
	var key uint64
	state := uint32(0)
	for level := k - 1; level >= 0; level-- {
		tuple := (mkey >> (uint(level) * d)) & dmask
		e := ht.enc[state][tuple]
		key = key<<d | uint64(e)&dmask
		state = e >> d
	}
	return key
}

// decode maps a Hilbert key back to the Morton key of its cell.
func (ht *hilbertTable) decode(key uint64, k int) uint64 {
	d := uint(ht.d)
	dmask := uint64(1)<<d - 1
	var mkey uint64
	state := uint32(0)
	for level := k - 1; level >= 0; level-- {
		digit := (key >> (uint(level) * d)) & dmask
		e := ht.dec[state][digit]
		mkey |= (uint64(e) & dmask) << (uint(level) * d)
		state = e >> d
	}
	return mkey
}

// signedPerm is a state of the machine: out bit a = in bit sig[a], xor
// flip bit a.
type signedPerm struct {
	sig  []uint8
	flip uint32
}

func (s signedPerm) apply(t uint32) uint32 {
	out := s.flip
	for a, b := range s.sig {
		out ^= ((t >> b) & 1) << uint(a)
	}
	return out
}

// compose returns c∘s (apply s first, then c):
// (c∘s)(t)_a = s(t)_{sig_c[a]} ^ flip_c[a].
func compose(c, s signedPerm) signedPerm {
	d := len(s.sig)
	sig := make([]uint8, d)
	var flip uint32
	for a := 0; a < d; a++ {
		b := c.sig[a]
		sig[a] = s.sig[b]
		flip |= (((s.flip >> b) & 1) ^ ((c.flip >> uint(a)) & 1)) << uint(a)
	}
	return signedPerm{sig: sig, flip: flip}
}

// key interns the state for the BFS map.
func (s signedPerm) key() string {
	b := make([]byte, len(s.sig)+4)
	copy(b, s.sig)
	for i := 0; i < 4; i++ {
		b[len(s.sig)+i] = byte(s.flip >> uint(8*i))
	}
	return string(b)
}

// asSignedPerm checks that the table f (of 2^d entries) is a signed bit
// permutation and returns it; ok is false otherwise.
func asSignedPerm(f []uint32, d int) (signedPerm, bool) {
	flip := f[0]
	sig := make([]uint8, d)
	var covered uint32
	for b := 0; b < d; b++ {
		v := f[1<<uint(b)] ^ flip
		if v == 0 || v&(v-1) != 0 {
			return signedPerm{}, false
		}
		a := uint8(0)
		for v>>1 != 0 {
			v >>= 1
			a++
		}
		if covered&(1<<a) != 0 {
			return signedPerm{}, false
		}
		covered |= 1 << a
		sig[a] = uint8(b)
	}
	s := signedPerm{sig: sig, flip: flip}
	for t := uint32(0); t < uint32(len(f)); t++ {
		if s.apply(t) != f[t] {
			return signedPerm{}, false
		}
	}
	return s, true
}

var hilbertTabCache sync.Map // d (int) -> *hilbertTable, nil when derivation failed

// hilbertTableFor returns the per-dimension state table, building and
// caching it on first use. A nil result means the derivation or its
// verification failed and callers must use the scalar path. Concurrent
// first calls may build the table twice; the contents are deterministic, so
// whichever store wins is equivalent.
func hilbertTableFor(d int) *hilbertTable {
	if v, ok := hilbertTabCache.Load(d); ok {
		tab, _ := v.(*hilbertTable)
		return tab
	}
	tab := buildHilbertTable(d)
	hilbertTabCache.Store(d, tab)
	return tab
}

func buildHilbertTable(d int) *hilbertTable {
	if d < 1 || d > maxHilbertTableDim {
		return nil
	}
	size := uint32(1) << uint(d)
	dmask := uint64(size - 1)

	// Probe the base orthant order at k=1: enc0[tuple] = digit, where tuple
	// bit d−1−i is coordinate i's bit (the Morton group layout).
	h1 := &Hilbert{u: grid.MustNew(d, 1)}
	enc0 := make([]uint32, size)
	dec0 := make([]uint32, size)
	seen := make([]bool, size)
	p := make(grid.Point, d)
	for tuple := uint32(0); tuple < size; tuple++ {
		for i := 0; i < d; i++ {
			p[i] = (tuple >> uint(d-1-i)) & 1
		}
		digit := h1.Index(p)
		if digit >= uint64(size) || seen[digit] {
			return nil
		}
		seen[digit] = true
		enc0[tuple] = uint32(digit)
		dec0[digit] = tuple
	}

	// Probe the per-orthant sub-transforms at k=2: with the identity state
	// at the top level, the low-level digits inside orthant T satisfy
	// digit0 = enc0[c_T(t)], so c_T = dec0 ∘ (t ↦ digit0).
	h2 := &Hilbert{u: grid.MustNew(d, 2)}
	children := make([]signedPerm, size)
	ctab := make([]uint32, size)
	for T := uint32(0); T < size; T++ {
		for t := uint32(0); t < size; t++ {
			for i := 0; i < d; i++ {
				sh := uint(d - 1 - i)
				p[i] = ((T>>sh)&1)<<1 | (t>>sh)&1
			}
			key := h2.Index(p)
			if uint32(key>>uint(d)) != enc0[T] {
				return nil
			}
			ctab[t] = dec0[key&dmask]
		}
		c, ok := asSignedPerm(ctab, d)
		if !ok {
			return nil
		}
		children[T] = c
	}

	// BFS over reachable states. State 0 is the identity; the transition on
	// actual tuple T from state s is: t' = s(T), digit = enc0[t'],
	// next = c_{t'} ∘ s.
	identity := signedPerm{sig: make([]uint8, d)}
	for i := range identity.sig {
		identity.sig[i] = uint8(i)
	}
	states := []signedPerm{identity}
	index := map[string]uint32{identity.key(): 0}
	var enc, dec [][]uint32
	for si := 0; si < len(states); si++ {
		s := states[si]
		encRow := make([]uint32, size)
		decRow := make([]uint32, size)
		for T := uint32(0); T < size; T++ {
			tp := s.apply(T)
			digit := enc0[tp]
			next := compose(children[tp], s)
			nk := next.key()
			ni, ok := index[nk]
			if !ok {
				ni = uint32(len(states))
				if ni >= maxHilbertStates {
					return nil
				}
				index[nk] = ni
				states = append(states, next)
			}
			encRow[T] = ni<<uint(d) | digit
			decRow[digit] = ni<<uint(d) | T
		}
		enc = append(enc, encRow)
		dec = append(dec, decRow)
	}

	// Verify the machine against the scalar implementation by full
	// enumeration at every small k — in particular k=3, the first depth at
	// which the composition rule (not just the probes) carries the result.
	tab := &hilbertTable{d: d, enc: enc, dec: dec}
	for k := 1; d*k <= bits.MaxKeyBits; k++ {
		u := grid.MustNew(d, k)
		if u.N() > maxHilbertVerifyCells {
			break
		}
		h := &Hilbert{u: u}
		q := make(grid.Point, d)
		for lin := uint64(0); lin < u.N(); lin++ {
			u.FromLinear(lin, p)
			mkey := bits.Interleave(p, k)
			want := h.Index(p)
			if tab.encode(mkey, k) != want {
				return nil
			}
			h.Point(want, q)
			if tab.decode(want, k) != bits.Interleave(q, k) {
				return nil
			}
		}
	}
	return tab
}
