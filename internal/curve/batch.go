package curve

import (
	"repro/internal/grid"
)

// This file defines the kernel layer of the curve package: optional batch
// and neighbor-key fast paths that compute exactly the same bits as the
// scalar Index/Point methods, but amortize interface dispatch, bounds checks
// and per-point bit fiddling. Every exact metric in the core package is
// O(n·d) curve evaluations, so this layer sets the throughput ceiling of the
// finite-n sweeps. The conformance engine carries a dedicated column
// (kernel-batch / kernel-sweep) proving the fast paths bit-match the scalar
// ones for every registered curve.

// InvalidKey marks a missing neighbor in NeighborKeys output. Curve keys
// occupy at most MaxKeyBits = 62 bits, so the all-ones value can never be a
// real index.
const InvalidKey = ^uint64(0)

// Batcher is the batch evaluation interface: IndexBatch and PointBatch are
// the vectorized forms of Curve.Index and Curve.Point over flat row-major
// coordinate storage (point i occupies coords[i*d : (i+1)*d], the same
// layout the core package uses for its flattened universes).
//
// Implementations must produce bit-identical results to the scalar methods
// and must be safe for concurrent use.
type Batcher interface {
	// IndexBatch writes Index of each of the len(dst) points in coords.
	// coords must have length len(dst)·d.
	IndexBatch(coords []uint32, dst []uint64)
	// PointBatch writes the coordinates of each index into dst, point i at
	// dst[i*d : (i+1)*d]. dst must have length len(indices)·d.
	PointBatch(indices []uint64, dst []uint32)
}

// NeighborKeyer computes the curve indices of a cell's 2d axis neighbors in
// one call — the hot operation of every nearest-neighbor stretch sweep. For
// the Z curve the keys come straight from dilated-integer arithmetic on the
// cell's own key; for batch-capable curves they come from one batched encode
// of the neighbor block; the scalar fallback simply loops Curve.Index.
//
// Instances returned by NewNeighborKeyer may carry scratch buffers and are
// NOT safe for concurrent use: create one per goroutine. Implementations
// must not retain or modify p.
type NeighborKeyer interface {
	// NeighborKeys fills keys[2·dim] with the index of p − e_dim and
	// keys[2·dim+1] with the index of p + e_dim, writing InvalidKey where
	// the neighbor lies outside the open grid. base must equal Index(p);
	// keys must have length 2d.
	NeighborKeys(p grid.Point, base uint64, keys []uint64)
	// NeighborKeysTorus is the periodic-boundary variant: coordinates wrap
	// modulo the side length. Following the torus engine's simple-graph
	// convention, on a 2-cycle (side = 2) only the +1 neighbor is emitted
	// (keys[2·dim] is InvalidKey), and on a 1-cycle both slots are
	// InvalidKey.
	NeighborKeysTorus(p grid.Point, base uint64, keys []uint64)
	// NeighborKeysBlock is the block form of NeighborKeys, the shape the
	// core sweeps consume: cell j has point coords[j·d : (j+1)·d], key
	// bases[j], and output slots keys[j·2d : (j+1)·2d]. One call covers
	// len(bases) cells, so the per-cell dispatch cost vanishes and
	// implementations can hoist their masks and tables out of the loop.
	// Implementations that derive neighbor keys from the base key alone may
	// ignore coords.
	NeighborKeysBlock(coords []uint32, bases []uint64, keys []uint64)
	// NeighborKeysTorusBlock is the block form of NeighborKeysTorus.
	NeighborKeysTorusBlock(coords []uint32, bases []uint64, keys []uint64)
}

// HasKernel reports whether c natively implements a kernel fast path
// (Batcher or NeighborKeyer). The core engines consult it to decide between
// the kernelized sweep and the legacy scalar loop; NewBatcher and
// NewNeighborKeyer work for every curve regardless, via scalar adapters.
func HasKernel(c Curve) bool {
	if _, ok := c.(Batcher); ok {
		return true
	}
	_, ok := c.(NeighborKeyer)
	return ok
}

// NewBatcher returns the batch evaluation interface for c: c itself when it
// implements Batcher natively, otherwise a scalar adapter that loops the
// Curve methods (same bits, no speedup).
func NewBatcher(c Curve) Batcher {
	if b, ok := c.(Batcher); ok {
		return b
	}
	return &scalarBatcher{c: c, d: c.Universe().D()}
}

// NewNeighborKeyer returns a neighbor-key kernel for c: the curve's own
// implementation when it is a native NeighborKeyer, a batched-encode adapter
// when it is a Batcher, and a scalar adapter otherwise. The returned value
// is not safe for concurrent use; create one per goroutine.
func NewNeighborKeyer(c Curve) NeighborKeyer {
	if nk, ok := c.(NeighborKeyer); ok {
		return nk
	}
	u := c.Universe()
	d := u.D()
	if b, ok := c.(Batcher); ok {
		return &batchKeyer{
			b:      b,
			d:      d,
			side:   u.Side(),
			coords: make([]uint32, 2*d*d),
			ok:     make([]bool, 2*d),
		}
	}
	return &scalarKeyer{c: c, d: d, side: u.Side(), q: u.NewPoint()}
}

// scalarBatcher adapts any Curve to the Batcher interface by looping the
// scalar methods.
type scalarBatcher struct {
	c Curve
	d int
}

func (s *scalarBatcher) IndexBatch(coords []uint32, dst []uint64) {
	d := s.d
	for i := range dst {
		dst[i] = s.c.Index(grid.Point(coords[i*d : (i+1)*d : (i+1)*d]))
	}
}

func (s *scalarBatcher) PointBatch(indices []uint64, dst []uint32) {
	d := s.d
	for i, idx := range indices {
		s.c.Point(idx, grid.Point(dst[i*d:(i+1)*d:(i+1)*d]))
	}
}

// batchKeyer derives neighbor keys from one batched encode of the 2d
// neighbor points per cell.
type batchKeyer struct {
	b      Batcher
	d      int
	side   uint32
	coords []uint32 // 2d rows of d coords
	ok     []bool   // per-slot validity, parallel to keys
}

// grow resizes the scratch buffers to hold `slots` neighbor rows and returns
// the coordinate and validity views.
func (bk *batchKeyer) grow(slots int) ([]uint32, []bool) {
	if cap(bk.coords) < slots*bk.d {
		bk.coords = make([]uint32, slots*bk.d)
	}
	if cap(bk.ok) < slots {
		bk.ok = make([]bool, slots)
	}
	return bk.coords[:slots*bk.d], bk.ok[:slots]
}

// stageNeighbors writes the 2d neighbor coordinate rows of p into nc starting
// at row slot0, recording per-slot validity. Torus selects wrapping semantics.
func (bk *batchKeyer) stageNeighbors(p grid.Point, nc []uint32, okv []bool, slot0 int, torus bool) {
	d, side := bk.d, bk.side
	for dim := 0; dim < d; dim++ {
		s := slot0 + 2*dim
		lo := nc[s*d : (s+1)*d]
		hi := nc[(s+1)*d : (s+2)*d]
		copy(lo, p)
		copy(hi, p)
		if torus {
			if okv[s] = side > 2; okv[s] {
				lo[dim] = (p[dim] + side - 1) & (side - 1)
			}
			if okv[s+1] = side > 1; okv[s+1] {
				hi[dim] = (p[dim] + 1) & (side - 1)
			}
		} else {
			if okv[s] = p[dim] > 0; okv[s] {
				lo[dim]--
			}
			if okv[s+1] = p[dim]+1 < side; okv[s+1] {
				hi[dim]++
			}
		}
	}
}

func (bk *batchKeyer) keysOne(p grid.Point, keys []uint64, torus bool) {
	nc, okv := bk.grow(2 * bk.d)
	bk.stageNeighbors(p, nc, okv, 0, torus)
	bk.b.IndexBatch(nc, keys[:2*bk.d])
	for i, ok := range okv {
		if !ok {
			keys[i] = InvalidKey
		}
	}
}

// keysBlock stages every cell's neighbor rows and resolves them with a single
// batched encode — for curves with an expensive scalar Index (Hilbert) the
// one big IndexBatch is the entire point of the kernel layer.
func (bk *batchKeyer) keysBlock(coords []uint32, bases []uint64, keys []uint64, torus bool) {
	d := bk.d
	cnt := len(bases)
	nc, okv := bk.grow(2 * d * cnt)
	for j := 0; j < cnt; j++ {
		bk.stageNeighbors(grid.Point(coords[j*d:(j+1)*d]), nc, okv, j*2*d, torus)
	}
	bk.b.IndexBatch(nc, keys[:2*d*cnt])
	for i, ok := range okv {
		if !ok {
			keys[i] = InvalidKey
		}
	}
}

func (bk *batchKeyer) NeighborKeys(p grid.Point, base uint64, keys []uint64) {
	bk.keysOne(p, keys, false)
}

func (bk *batchKeyer) NeighborKeysTorus(p grid.Point, base uint64, keys []uint64) {
	bk.keysOne(p, keys, true)
}

func (bk *batchKeyer) NeighborKeysBlock(coords []uint32, bases []uint64, keys []uint64) {
	bk.keysBlock(coords, bases, keys, false)
}

func (bk *batchKeyer) NeighborKeysTorusBlock(coords []uint32, bases []uint64, keys []uint64) {
	bk.keysBlock(coords, bases, keys, true)
}

// scalarKeyer loops Curve.Index over the existing neighbors.
type scalarKeyer struct {
	c    Curve
	d    int
	side uint32
	q    grid.Point
}

func (sk *scalarKeyer) NeighborKeys(p grid.Point, base uint64, keys []uint64) {
	copy(sk.q, p)
	for dim := 0; dim < sk.d; dim++ {
		if p[dim] > 0 {
			sk.q[dim] = p[dim] - 1
			keys[2*dim] = sk.c.Index(sk.q)
		} else {
			keys[2*dim] = InvalidKey
		}
		if p[dim]+1 < sk.side {
			sk.q[dim] = p[dim] + 1
			keys[2*dim+1] = sk.c.Index(sk.q)
		} else {
			keys[2*dim+1] = InvalidKey
		}
		sk.q[dim] = p[dim]
	}
}

func (sk *scalarKeyer) NeighborKeysTorus(p grid.Point, base uint64, keys []uint64) {
	side := sk.side
	copy(sk.q, p)
	for dim := 0; dim < sk.d; dim++ {
		if side > 2 {
			sk.q[dim] = (p[dim] + side - 1) & (side - 1)
			keys[2*dim] = sk.c.Index(sk.q)
		} else {
			keys[2*dim] = InvalidKey
		}
		if side > 1 {
			sk.q[dim] = (p[dim] + 1) & (side - 1)
			keys[2*dim+1] = sk.c.Index(sk.q)
		} else {
			keys[2*dim+1] = InvalidKey
		}
		sk.q[dim] = p[dim]
	}
}

func (sk *scalarKeyer) NeighborKeysBlock(coords []uint32, bases []uint64, keys []uint64) {
	d := sk.d
	for j := range bases {
		sk.NeighborKeys(grid.Point(coords[j*d:(j+1)*d]), bases[j], keys[j*2*d:(j+1)*2*d])
	}
}

func (sk *scalarKeyer) NeighborKeysTorusBlock(coords []uint32, bases []uint64, keys []uint64) {
	d := sk.d
	for j := range bases {
		sk.NeighborKeysTorus(grid.Point(coords[j*d:(j+1)*d]), bases[j], keys[j*2*d:(j+1)*2*d])
	}
}

// ScalarOnly wraps c so that only the plain Curve methods remain visible:
// HasKernel reports false and every engine takes the legacy scalar path.
// The benchmark harness and the conformance kernel-sweep check use it as
// the pre-kernel reference implementation.
func ScalarOnly(c Curve) Curve { return scalarOnly{c} }

type scalarOnly struct{ c Curve }

func (s scalarOnly) Universe() *grid.Universe         { return s.c.Universe() }
func (s scalarOnly) Index(p grid.Point) uint64        { return s.c.Index(p) }
func (s scalarOnly) Point(idx uint64, dst grid.Point) { s.c.Point(idx, dst) }
func (s scalarOnly) Name() string                     { return s.c.Name() }
