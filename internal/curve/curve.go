// Package curve implements space filling curves over the d-dimensional grid
// universe of the grid package.
//
// Following the paper (§I, §III), an SFC is any bijection π from the n cells
// of the universe onto {0, …, n−1}; it need not be continuous (consecutive
// cells need not be adjacent) and the induced curve may self-intersect. The
// package provides the curves analyzed or referenced by the paper:
//
//   - Z curve (Morton order) — analyzed in §IV.B (Theorem 2)
//   - Simple curve (row-major order, eq. 8) — analyzed in §IV.C (Theorem 3)
//     and §V.A (Proposition 2)
//   - Hilbert curve — the open question of §VI; d-dimensional via the
//     Skilling transpose algorithm
//   - Gray-code curve — related work [9, 10]
//   - Snake (boustrophedon) curve — a continuous variant of the simple curve
//   - Diagonal curve — anti-diagonal sweep, another structure-free baseline
//   - Bit-reversal curve — deterministic worst-case baseline (Θ(n) stretch)
//   - Random curve — a seeded uniformly random bijection, the natural
//     worst-case baseline
//   - Table curve — the Z order materialized into an explicit lookup table,
//     a standing differential check of the table machinery (it must agree
//     with "z" everywhere)
//
// plus axis-permutation and reflection wrappers used to test invariance of
// the stretch metrics under grid symmetries.
package curve

import (
	"fmt"
	"sort"

	"repro/internal/grid"
)

// Curve is a space filling curve: a bijection between the cells of a
// universe and the index range [0, n).
//
// Implementations must be safe for concurrent use by multiple goroutines;
// all the curves in this package are immutable after construction.
type Curve interface {
	// Universe returns the grid the curve fills.
	Universe() *grid.Universe
	// Index returns π(p) ∈ [0, n). The argument must be a cell of the
	// universe; Index must not retain or modify it.
	Index(p grid.Point) uint64
	// Point writes π⁻¹(idx) into dst, which must have length d.
	Point(idx uint64, dst grid.Point)
	// Name returns a short stable identifier ("z", "hilbert", …).
	Name() string
}

// Dist returns Δπ(a, b) = |π(a) − π(b)|, the distance between two cells
// along the curve (§III of the paper).
func Dist(c Curve, a, b grid.Point) uint64 {
	ia, ib := c.Index(a), c.Index(b)
	if ia >= ib {
		return ia - ib
	}
	return ib - ia
}

// Validate checks that c is a bijection onto [0, n) and that Point inverts
// Index, by full enumeration. It is O(n) time and n/8 bytes of memory;
// intended for tests and for validating new curve implementations.
func Validate(c Curve) error {
	u := c.Universe()
	n := u.N()
	seen := make([]uint64, (n+63)/64)
	q := u.NewPoint()
	var failure error
	u.Cells(func(_ uint64, p grid.Point) bool {
		idx := c.Index(p)
		if idx >= n {
			failure = fmt.Errorf("curve %s: Index(%v) = %d out of range [0,%d)", c.Name(), p, idx, n)
			return false
		}
		if seen[idx/64]&(1<<(idx%64)) != 0 {
			failure = fmt.Errorf("curve %s: index %d assigned twice (second at %v)", c.Name(), idx, p)
			return false
		}
		seen[idx/64] |= 1 << (idx % 64)
		c.Point(idx, q)
		if !q.Equal(p) {
			failure = fmt.Errorf("curve %s: Point(Index(%v)) = %v", c.Name(), p, q)
			return false
		}
		return true
	})
	return failure
}

// IsUnitStep reports whether consecutive curve positions are always nearest
// neighbors in the grid (Manhattan distance 1) — the classical "continuous,
// non-self-intersecting" SFC property. The paper's definition does not
// require it (curve π2 of Figure 1 violates it); Hilbert, Snake and the
// 1-dimensional curves satisfy it, the Z and Gray curves do not.
func IsUnitStep(c Curve) bool {
	u := c.Universe()
	prev := u.NewPoint()
	cur := u.NewPoint()
	c.Point(0, prev)
	for idx := uint64(1); idx < u.N(); idx++ {
		c.Point(idx, cur)
		if grid.Manhattan(prev, cur) != 1 {
			return false
		}
		prev, cur = cur, prev
	}
	return true
}

// Factory builds a curve over u. Randomized curves derive their permutation
// deterministically from seed; deterministic curves ignore it.
type Factory func(u *grid.Universe, seed int64) (Curve, error)

var registry = map[string]Factory{
	"z":        func(u *grid.Universe, _ int64) (Curve, error) { return NewZ(u), nil },
	"simple":   func(u *grid.Universe, _ int64) (Curve, error) { return NewSimple(u), nil },
	"snake":    func(u *grid.Universe, _ int64) (Curve, error) { return NewSnake(u), nil },
	"gray":     func(u *grid.Universe, _ int64) (Curve, error) { return NewGray(u), nil },
	"diagonal": func(u *grid.Universe, _ int64) (Curve, error) { return NewDiagonal(u) },
	"bitrev":   func(u *grid.Universe, _ int64) (Curve, error) { return NewBitReversal(u), nil },
	"hilbert":  func(u *grid.Universe, _ int64) (Curve, error) { return NewHilbert(u), nil },
	"random":   func(u *grid.Universe, seed int64) (Curve, error) { return NewRandom(u, seed) },
	// The table-backed curve: the Z order materialized into an explicit
	// lookup table. Metrically identical to "z", but exercises the Table
	// code path everywhere a registry sweep runs — a standing differential
	// check of the table machinery against the bit-interleaving arithmetic.
	"table": func(u *grid.Universe, _ int64) (Curve, error) { return TableFromCurve(NewZ(u), "table") },
}

// Names returns the registered curve names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ByName constructs the named curve over u. seed is used only by randomized
// curves.
func ByName(name string, u *grid.Universe, seed int64) (Curve, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("curve: unknown curve %q (have %v)", name, Names())
	}
	return f(u, seed)
}
