package curve

import (
	"testing"

	"repro/internal/grid"
)

// FuzzCurveRoundTrip fuzzes both compositions of every registered curve's
// Index/Point pair over arbitrary universe shapes, cells and positions:
// Point(Index(p)) = p for a fuzzed cell p, and Index(Point(i)) = i for a
// fuzzed position i. Table-backed curves (random, table) cost O(n) to build,
// so they join the sweep only on universes small enough to keep the fuzzer
// fast; their bijection structure is additionally covered by Validate tests.
func FuzzCurveRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(4), uint64(7))
	f.Add(uint8(3), uint8(3), uint64(0))
	f.Add(uint8(1), uint8(10), uint64(999))
	f.Add(uint8(4), uint8(1), uint64(1<<40))
	f.Fuzz(func(t *testing.T, dRaw, kRaw uint8, seed uint64) {
		d := 1 + int(dRaw)%5
		k := 1 + int(kRaw)%4
		u := grid.MustNew(d, k)
		const tableCap = 1 << 12
		p := u.NewPoint()
		s := seed
		for i := range p {
			s = s*6364136223846793005 + 1442695040888963407
			p[i] = uint32(s>>32) % u.Side()
		}
		s = s*6364136223846793005 + 1442695040888963407
		pos := s % u.N()
		q := u.NewPoint()
		for _, name := range Names() {
			if (name == "random" || name == "table") && u.N() > tableCap {
				continue
			}
			c, err := ByName(name, u, int64(seed%1024)+1)
			if err != nil {
				t.Fatal(err)
			}
			// Composition 1: Point ∘ Index = id on cells.
			idx := c.Index(p)
			if idx >= u.N() {
				t.Fatalf("%s: Index(%v) = %d out of range on %v", name, p, idx, u)
			}
			c.Point(idx, q)
			if !q.Equal(p) {
				t.Fatalf("%s: Point(Index(%v)) = %v on %v", name, p, q, u)
			}
			// Composition 2: Index ∘ Point = id on positions.
			c.Point(pos, q)
			for i, v := range q {
				if v >= u.Side() {
					t.Fatalf("%s: Point(%d)[%d] = %d out of range on %v", name, pos, i, v, u)
				}
			}
			if got := c.Index(q); got != pos {
				t.Fatalf("%s: Index(Point(%d)) = %d on %v", name, pos, got, u)
			}
		}
	})
}

// FuzzSnakeUnitStep fuzzes the snake curve's unit-step property at
// arbitrary positions and shapes.
func FuzzSnakeUnitStep(f *testing.F) {
	f.Add(uint8(2), uint8(4), uint64(3))
	f.Add(uint8(4), uint8(2), uint64(100))
	f.Fuzz(func(t *testing.T, dRaw, kRaw uint8, idxRaw uint64) {
		d := 1 + int(dRaw)%5
		k := 1 + int(kRaw)%4
		u := grid.MustNew(d, k)
		if u.N() < 2 {
			return
		}
		s := NewSnake(u)
		idx := idxRaw % (u.N() - 1)
		p := u.NewPoint()
		q := u.NewPoint()
		s.Point(idx, p)
		s.Point(idx+1, q)
		if grid.Manhattan(p, q) != 1 {
			t.Fatalf("snake step %d→%d: %v to %v on %v", idx, idx+1, p, q, u)
		}
	})
}
