package curve

import (
	"testing"

	"repro/internal/grid"
)

// FuzzCurveRoundTrip fuzzes every registered deterministic curve's
// Index/Point pair over arbitrary universe shapes and cells.
func FuzzCurveRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(4), uint64(7))
	f.Add(uint8(3), uint8(3), uint64(0))
	f.Add(uint8(1), uint8(10), uint64(999))
	f.Fuzz(func(t *testing.T, dRaw, kRaw uint8, seed uint64) {
		d := 1 + int(dRaw)%5
		k := 1 + int(kRaw)%4
		u := grid.MustNew(d, k)
		p := u.NewPoint()
		s := seed
		for i := range p {
			s = s*6364136223846793005 + 1442695040888963407
			p[i] = uint32(s>>32) % u.Side()
		}
		q := u.NewPoint()
		for _, name := range Names() {
			if name == "random" {
				continue // table-backed; covered by Validate tests
			}
			c, err := ByName(name, u, 1)
			if err != nil {
				t.Fatal(err)
			}
			idx := c.Index(p)
			if idx >= u.N() {
				t.Fatalf("%s: Index(%v) = %d out of range on %v", name, p, idx, u)
			}
			c.Point(idx, q)
			if !q.Equal(p) {
				t.Fatalf("%s: Point(Index(%v)) = %v on %v", name, p, q, u)
			}
		}
	})
}

// FuzzSnakeUnitStep fuzzes the snake curve's unit-step property at
// arbitrary positions and shapes.
func FuzzSnakeUnitStep(f *testing.F) {
	f.Add(uint8(2), uint8(4), uint64(3))
	f.Add(uint8(4), uint8(2), uint64(100))
	f.Fuzz(func(t *testing.T, dRaw, kRaw uint8, idxRaw uint64) {
		d := 1 + int(dRaw)%5
		k := 1 + int(kRaw)%4
		u := grid.MustNew(d, k)
		if u.N() < 2 {
			return
		}
		s := NewSnake(u)
		idx := idxRaw % (u.N() - 1)
		p := u.NewPoint()
		q := u.NewPoint()
		s.Point(idx, p)
		s.Point(idx+1, q)
		if grid.Manhattan(p, q) != 1 {
			t.Fatalf("snake step %d→%d: %v to %v on %v", idx, idx+1, p, q, u)
		}
	})
}
