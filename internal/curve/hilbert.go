package curve

import (
	"repro/internal/bits"
	"repro/internal/grid"
)

// Hilbert is the d-dimensional Hilbert curve, implemented with Skilling's
// transpose algorithm (J. Skilling, "Programming the Hilbert curve", AIP
// Conf. Proc. 707, 2004). The curve is unit-step (consecutive positions are
// nearest neighbors) and non-self-intersecting in every dimension.
//
// The paper leaves the average NN-stretch of the Hilbert curve as an open
// question (§VI); the experiment harness measures it (experiment
// "ext-hilbert") and finds it in the same Θ(n^(1−1/d)) regime as the Z
// curve.
type Hilbert struct {
	u   *grid.Universe
	tab *hilbertTable // derived state table, nil when unavailable
}

// NewHilbert returns the Hilbert curve over u.
func NewHilbert(u *grid.Universe) *Hilbert {
	return &Hilbert{u: u, tab: hilbertTableFor(u.D())}
}

// Universe implements Curve.
func (h *Hilbert) Universe() *grid.Universe { return h.u }

// Name implements Curve.
func (h *Hilbert) Name() string { return "hilbert" }

// Index implements Curve: it converts the axes to Skilling's transposed
// Hilbert form in a scratch copy and interleaves the transpose bits into the
// final index (most significant level first, matching the bits package
// convention).
func (h *Hilbert) Index(p grid.Point) uint64 {
	d, k := h.u.D(), h.u.K()
	if k == 0 {
		return 0
	}
	var buf [16]uint32
	var x []uint32
	if d <= len(buf) {
		x = buf[:d]
	} else {
		x = make([]uint32, d)
	}
	copy(x, p)
	axesToTranspose(x, k)
	return bits.Interleave(x, k)
}

// Point implements Curve.
func (h *Hilbert) Point(idx uint64, dst grid.Point) {
	k := h.u.K()
	if k == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	bits.Deinterleave(idx, k, dst)
	transposeToAxes(dst, k)
}

// IndexBatch implements Batcher: LUT Morton spread of the coordinates
// followed by the per-level state-machine walk, replacing the scalar path's
// bit-serial rotate/reflect loop. Falls back to the scalar method when the
// state table is unavailable.
func (h *Hilbert) IndexBatch(coords []uint32, dst []uint64) {
	d, k := h.u.D(), h.u.K()
	tab := h.tab
	if tab == nil {
		for i := range dst {
			dst[i] = h.Index(grid.Point(coords[i*d : (i+1)*d : (i+1)*d]))
		}
		return
	}
	switch {
	case d == 2:
		for i := range dst {
			dst[i] = tab.encode(bits.Interleave2LUT(coords[2*i], coords[2*i+1]), k)
		}
	case d == 3 && k <= 20:
		for i := range dst {
			dst[i] = tab.encode(bits.Interleave3LUT(coords[3*i], coords[3*i+1], coords[3*i+2]), k)
		}
	default:
		for i := range dst {
			dst[i] = tab.encode(bits.Interleave(grid.Point(coords[i*d:(i+1)*d:(i+1)*d]), k), k)
		}
	}
}

// PointBatch implements Batcher: state-machine walk back to the Morton key,
// then a LUT compaction into coordinates.
func (h *Hilbert) PointBatch(indices []uint64, dst []uint32) {
	d, k := h.u.D(), h.u.K()
	tab := h.tab
	if tab == nil {
		for i, idx := range indices {
			h.Point(idx, grid.Point(dst[i*d:(i+1)*d:(i+1)*d]))
		}
		return
	}
	switch {
	case d == 2:
		for i, idx := range indices {
			dst[2*i], dst[2*i+1] = bits.Deinterleave2LUT(tab.decode(idx, k))
		}
	case d == 3 && k <= 20:
		for i, idx := range indices {
			dst[3*i], dst[3*i+1], dst[3*i+2] = bits.Deinterleave3LUT(tab.decode(idx, k))
		}
	default:
		for i, idx := range indices {
			bits.Deinterleave(tab.decode(idx, k), k, grid.Point(dst[i*d:(i+1)*d:(i+1)*d]))
		}
	}
}

var (
	_ Curve   = (*Hilbert)(nil)
	_ Batcher = (*Hilbert)(nil)
)

// axesToTranspose converts grid coordinates (k bits each) into Skilling's
// transposed Hilbert representation, in place.
func axesToTranspose(x []uint32, k int) {
	n := len(x)
	m := uint32(1) << uint(k-1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose, in place.
func transposeToAxes(x []uint32, k int) {
	n := len(x)
	top := uint32(2) << uint(k-1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != top; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t = (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}
