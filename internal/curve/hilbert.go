package curve

import (
	"repro/internal/bits"
	"repro/internal/grid"
)

// Hilbert is the d-dimensional Hilbert curve, implemented with Skilling's
// transpose algorithm (J. Skilling, "Programming the Hilbert curve", AIP
// Conf. Proc. 707, 2004). The curve is unit-step (consecutive positions are
// nearest neighbors) and non-self-intersecting in every dimension.
//
// The paper leaves the average NN-stretch of the Hilbert curve as an open
// question (§VI); the experiment harness measures it (experiment
// "ext-hilbert") and finds it in the same Θ(n^(1−1/d)) regime as the Z
// curve.
type Hilbert struct {
	u *grid.Universe
}

// NewHilbert returns the Hilbert curve over u.
func NewHilbert(u *grid.Universe) *Hilbert { return &Hilbert{u: u} }

// Universe implements Curve.
func (h *Hilbert) Universe() *grid.Universe { return h.u }

// Name implements Curve.
func (h *Hilbert) Name() string { return "hilbert" }

// Index implements Curve: it converts the axes to Skilling's transposed
// Hilbert form in a scratch copy and interleaves the transpose bits into the
// final index (most significant level first, matching the bits package
// convention).
func (h *Hilbert) Index(p grid.Point) uint64 {
	d, k := h.u.D(), h.u.K()
	if k == 0 {
		return 0
	}
	var buf [16]uint32
	var x []uint32
	if d <= len(buf) {
		x = buf[:d]
	} else {
		x = make([]uint32, d)
	}
	copy(x, p)
	axesToTranspose(x, k)
	return bits.Interleave(x, k)
}

// Point implements Curve.
func (h *Hilbert) Point(idx uint64, dst grid.Point) {
	k := h.u.K()
	if k == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	bits.Deinterleave(idx, k, dst)
	transposeToAxes(dst, k)
}

var _ Curve = (*Hilbert)(nil)

// axesToTranspose converts grid coordinates (k bits each) into Skilling's
// transposed Hilbert representation, in place.
func axesToTranspose(x []uint32, k int) {
	n := len(x)
	m := uint32(1) << uint(k-1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose, in place.
func transposeToAxes(x []uint32, k int) {
	n := len(x)
	top := uint32(2) << uint(k-1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != top; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t = (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}
