package curve

import (
	"testing"

	"repro/internal/grid"
)

func TestBitReversalBijection(t *testing.T) {
	for _, dk := range [][2]int{{1, 6}, {2, 4}, {3, 2}, {2, 0}} {
		u := grid.MustNew(dk[0], dk[1])
		if err := Validate(NewBitReversal(u)); err != nil {
			t.Errorf("%v: %v", u, err)
		}
	}
}

func TestBitReversalKnownValues(t *testing.T) {
	// 1-d, 8 cells: van der Corput order 0,4,2,6,1,5,3,7 — i.e. the cell at
	// coordinate x gets index reverse3(x).
	u := grid.MustNew(1, 3)
	b := NewBitReversal(u)
	want := []uint64{0, 4, 2, 6, 1, 5, 3, 7}
	for x, w := range want {
		if got := b.Index(u.MustPoint(uint32(x))); got != w {
			t.Fatalf("bitrev(%d) = %d, want %d", x, got, w)
		}
	}
}

func TestBitReversalDestroysLocality(t *testing.T) {
	// Neighbors along dimension 1 with even coordinate differ in the lowest
	// linear bit → highest key bit → curve distance exactly n/2.
	u := grid.MustNew(2, 4)
	b := NewBitReversal(u)
	if got := Dist(b, u.MustPoint(0, 5), u.MustPoint(1, 5)); got != u.N()/2 {
		t.Fatalf("even-step distance %d, want %d", got, u.N()/2)
	}
}
