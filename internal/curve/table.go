package curve

import (
	"fmt"

	"repro/internal/grid"
)

// Table is an explicit space filling curve given by a lookup table: entry i
// of the table is the curve index of the cell with Linear index i. It
// realizes the paper's fully general definition of an SFC — any bijection —
// and is used for the hand-constructed curves of Figure 1 and for random
// bijections in property tests.
type Table struct {
	u     *grid.Universe
	name  string
	perm  []uint64
	inv   []uint64
	masks []uint64 // contiguous per-dimension masks of the linear index
}

// NewTable builds a table curve. perm[linearIndex] = curve index; it must be
// a permutation of [0, n).
func NewTable(u *grid.Universe, name string, perm []uint64) (*Table, error) {
	n := u.N()
	if uint64(len(perm)) != n {
		return nil, fmt.Errorf("curve: table of %d entries for n=%d", len(perm), n)
	}
	inv := make([]uint64, n)
	seen := make([]bool, n)
	for lin, idx := range perm {
		if idx >= n {
			return nil, fmt.Errorf("curve: table entry %d = %d out of range", lin, idx)
		}
		if seen[idx] {
			return nil, fmt.Errorf("curve: table assigns index %d twice", idx)
		}
		seen[idx] = true
		inv[idx] = uint64(lin)
	}
	return &Table{u: u, name: name, perm: perm, inv: inv, masks: linearMasks(u)}, nil
}

// MustTable is NewTable for known-good tables. It panics iff NewTable would
// return an error (a perm that is not a bijection on [0, n), or a size
// mismatch with the universe), so it is safe exactly for hard-coded
// permutations whose validity is established by the package's own tests.
// Code building tables from computed or external data must use NewTable and
// propagate the error.
func MustTable(u *grid.Universe, name string, perm []uint64) *Table {
	t, err := NewTable(u, name, perm)
	if err != nil {
		panic(err)
	}
	return t
}

// FromOrder builds a table curve from a visiting order: order[t] is the
// Linear index of the cell visited at curve position t.
func FromOrder(u *grid.Universe, name string, order []uint64) (*Table, error) {
	n := u.N()
	if uint64(len(order)) != n {
		return nil, fmt.Errorf("curve: order of %d entries for n=%d", len(order), n)
	}
	perm := make([]uint64, n)
	seen := make([]bool, n)
	for pos, lin := range order {
		if lin >= n {
			return nil, fmt.Errorf("curve: order entry %d = %d out of range", pos, lin)
		}
		if seen[lin] {
			return nil, fmt.Errorf("curve: order visits cell %d twice", lin)
		}
		seen[lin] = true
		perm[lin] = uint64(pos)
	}
	return NewTable(u, name, perm)
}

// TableFromCurve materializes src into an explicit lookup table with the
// given name. The result is pointwise identical to src but answers every
// query through the table code path — the conformance engine uses such
// shadows as a differential oracle against the arithmetic implementations,
// and the registry's "table" curve is the Z curve materialized this way.
// Universes larger than MaxRandomCells cells are rejected (the table costs
// 16 bytes per cell).
func TableFromCurve(src Curve, name string) (*Table, error) {
	u := src.Universe()
	n := u.N()
	if n > MaxRandomCells {
		return nil, fmt.Errorf("curve: table over %d cells exceeds limit %d", n, MaxRandomCells)
	}
	perm := make([]uint64, n)
	p := u.NewPoint()
	for lin := uint64(0); lin < n; lin++ {
		u.FromLinear(lin, p)
		perm[lin] = src.Index(p)
	}
	return NewTable(u, name, perm)
}

// Universe implements Curve.
func (t *Table) Universe() *grid.Universe { return t.u }

// Name implements Curve.
func (t *Table) Name() string { return t.name }

// Index implements Curve.
func (t *Table) Index(p grid.Point) uint64 { return t.perm[t.u.Linear(p)] }

// Point implements Curve.
func (t *Table) Point(idx uint64, dst grid.Point) { t.u.FromLinear(t.inv[idx], dst) }

// IndexBatch implements Batcher: inline row-major linearization (the side is
// a power of two, so it is a bit concatenation) followed by the permutation
// lookup.
func (t *Table) IndexBatch(coords []uint32, dst []uint64) {
	d, k := t.u.D(), uint(t.u.K())
	for i := range dst {
		row := coords[i*d : (i+1)*d : (i+1)*d]
		var lin uint64
		for j := d - 1; j >= 0; j-- {
			lin = lin<<k | uint64(row[j])
		}
		dst[i] = t.perm[lin]
	}
}

// PointBatch implements Batcher.
func (t *Table) PointBatch(indices []uint64, dst []uint32) {
	d, k := t.u.D(), uint(t.u.K())
	mask := uint64(t.u.Side()) - 1
	for i, idx := range indices {
		row := dst[i*d : (i+1)*d : (i+1)*d]
		lin := t.inv[idx]
		for j := 0; j < d; j++ {
			row[j] = uint32(lin & mask)
			lin >>= k
		}
	}
}

// NeighborKeys implements NeighborKeyer: recover the linear index through
// the inverse table, step it with dilated arithmetic on the contiguous
// per-dimension masks, and map each neighbor back through the permutation.
// Stateless, safe to share across goroutines.
func (t *Table) NeighborKeys(p grid.Point, base uint64, keys []uint64) {
	lin := t.inv[base]
	d := t.u.D()
	neighborKeysDilated(lin, t.masks, keys)
	for i := 0; i < 2*d; i++ {
		if keys[i] != InvalidKey {
			keys[i] = t.perm[keys[i]]
		}
	}
}

// NeighborKeysTorus implements NeighborKeyer.
func (t *Table) NeighborKeysTorus(p grid.Point, base uint64, keys []uint64) {
	lin := t.inv[base]
	d := t.u.D()
	neighborKeysDilatedTorus(lin, t.masks, keys, t.u.Side())
	for i := 0; i < 2*d; i++ {
		if keys[i] != InvalidKey {
			keys[i] = t.perm[keys[i]]
		}
	}
}

// NeighborKeysBlock implements NeighborKeyer.
func (t *Table) NeighborKeysBlock(_ []uint32, bases []uint64, keys []uint64) {
	nd := 2 * t.u.D()
	for j, base := range bases {
		t.NeighborKeys(nil, base, keys[j*nd:(j+1)*nd])
	}
}

// NeighborKeysTorusBlock implements NeighborKeyer.
func (t *Table) NeighborKeysTorusBlock(_ []uint32, bases []uint64, keys []uint64) {
	nd := 2 * t.u.D()
	for j, base := range bases {
		t.NeighborKeysTorus(nil, base, keys[j*nd:(j+1)*nd])
	}
}

var (
	_ Curve         = (*Table)(nil)
	_ Batcher       = (*Table)(nil)
	_ NeighborKeyer = (*Table)(nil)
)
