package curve

import (
	"sort"
	"testing"

	"repro/internal/grid"
)

func TestDiagonalBijectionManySizes(t *testing.T) {
	for _, dk := range [][2]int{{1, 5}, {2, 4}, {2, 0}, {3, 3}, {4, 2}, {5, 1}} {
		u := grid.MustNew(dk[0], dk[1])
		dg, err := NewDiagonal(u)
		if err != nil {
			t.Fatalf("%v: %v", u, err)
		}
		if err := Validate(dg); err != nil {
			t.Errorf("%v: %v", u, err)
		}
	}
}

func TestDiagonalOrderIsBySum(t *testing.T) {
	// Visiting order must be non-decreasing in the coordinate sum, with the
	// tie broken by dimension d most significant.
	u := grid.MustNew(3, 2)
	dg := MustDiagonal(u)
	p := u.NewPoint()
	prevSum := int64(-1)
	var prevKey []uint32
	for idx := uint64(0); idx < u.N(); idx++ {
		dg.Point(idx, p)
		var sum int64
		for _, v := range p {
			sum += int64(v)
		}
		if sum < prevSum {
			t.Fatalf("sum decreased at idx %d", idx)
		}
		if sum == prevSum {
			// Compare (x_d, …, x_1) lexicographically.
			less := false
			for i := u.D() - 1; i >= 0; i-- {
				if prevKey[i] != p[i] {
					less = prevKey[i] < p[i]
					break
				}
			}
			if !less {
				t.Fatalf("tie-break violated at idx %d: %v after %v", idx, p, prevKey)
			}
		}
		prevSum = sum
		prevKey = append(prevKey[:0], p...)
	}
}

func TestDiagonal2DKnownOrder(t *testing.T) {
	// 3-bit? Use 4×4: diagonals 0,1,2,…: (0,0) | (1,0),(0,1) | (2,0),(1,1),(0,2) …
	u := grid.MustNew(2, 2)
	dg := MustDiagonal(u)
	wantOrder := [][2]uint32{
		{0, 0},
		{1, 0}, {0, 1},
		{2, 0}, {1, 1}, {0, 2},
		{3, 0}, {2, 1}, {1, 2}, {0, 3},
		{3, 1}, {2, 2}, {1, 3},
		{3, 2}, {2, 3},
		{3, 3},
	}
	p := u.NewPoint()
	for idx, w := range wantOrder {
		dg.Point(uint64(idx), p)
		if p[0] != w[0] || p[1] != w[1] {
			t.Fatalf("position %d = %v, want (%d,%d)", idx, p, w[0], w[1])
		}
		if got := dg.Index(u.MustPoint(w[0], w[1])); got != uint64(idx) {
			t.Fatalf("Index(%v) = %d, want %d", w, got, idx)
		}
	}
}

func TestDiagonalDiagonalsAreContiguous(t *testing.T) {
	// All cells of one diagonal occupy one contiguous index range.
	u := grid.MustNew(3, 2)
	dg := MustDiagonal(u)
	bySum := map[int64][]uint64{}
	u.Cells(func(_ uint64, p grid.Point) bool {
		var sum int64
		for _, v := range p {
			sum += int64(v)
		}
		bySum[sum] = append(bySum[sum], dg.Index(p))
		return true
	})
	for sum, idxs := range bySum {
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		for i := 1; i < len(idxs); i++ {
			if idxs[i] != idxs[i-1]+1 {
				t.Fatalf("diagonal %d not contiguous: %v", sum, idxs)
			}
		}
	}
}

func TestDiagonalTooLarge(t *testing.T) {
	// d=2, k=28 → tables of ~2^29 entries exceed the budget.
	u := grid.MustNew(2, 28)
	if _, err := NewDiagonal(u); err == nil {
		t.Fatal("oversized diagonal accepted")
	}
}

func TestDiagonalD1IsIdentity(t *testing.T) {
	u := grid.MustNew(1, 6)
	dg := MustDiagonal(u)
	u.Cells(func(idx uint64, p grid.Point) bool {
		if dg.Index(p) != idx {
			t.Fatalf("1-d diagonal not identity at %v", p)
		}
		return true
	})
}

func BenchmarkDiagonalIndex(b *testing.B) {
	u := grid.MustNew(3, 7)
	dg := MustDiagonal(u)
	p := u.MustPoint(100, 50, 25)
	for i := 0; i < b.N; i++ {
		sink = dg.Index(p)
	}
}

func BenchmarkDiagonalPoint(b *testing.B) {
	u := grid.MustNew(3, 7)
	dg := MustDiagonal(u)
	p := u.NewPoint()
	mask := u.N() - 1
	for i := 0; i < b.N; i++ {
		dg.Point(uint64(i)&mask, p)
	}
}
