package curve

import (
	"fmt"
	"sort"

	"repro/internal/grid"
)

// Diagonal is the anti-diagonal curve: cells are visited in increasing
// order of their coordinate sum Σ x_i, ties broken lexicographically with
// dimension d most significant. In two dimensions this is the classic
// Cantor-style diagonal sweep.
//
// It is a further "simple" curve in the spirit of §IV.C — no recursive
// structure at all — and a useful adversary for the stretch experiments:
// its nearest neighbors sit in adjacent diagonals whose sizes are
// Θ(n^(1−1/d)), so it also lands in the Θ(n^(1−1/d)) average NN-stretch
// regime, but with a different constant than the row-major curve.
//
// Index and Point run in O(d) and O(d·log s) respectively, using
// precomputed per-dimension tables of lattice-point counts
// ("bounded compositions"): counts[j][t] = #{y ∈ [0,s)^j : Σ y = t}.
type Diagonal struct {
	u *grid.Universe
	// prefix[j][t] = Σ_{t' ≤ t} counts[j][t'] for j = 1..d (index j-1),
	// with t ranging over 0..j(s-1).
	prefix [][]uint64
	// cum[t] = number of cells with coordinate sum < t (so cum has length
	// d(s-1)+2 and cum[d(s-1)+1] = n).
	cum []uint64
}

// maxDiagonalTableEntries bounds the precomputed table size (8 bytes per
// entry).
const maxDiagonalTableEntries = 1 << 26

// NewDiagonal builds the diagonal curve over u. It errors when the count
// tables would exceed the memory budget (universes with d·2^k beyond ~2^24).
func NewDiagonal(u *grid.Universe) (*Diagonal, error) {
	d := u.D()
	s := int64(u.Side())
	maxSum := int64(d) * (s - 1)
	if int64(d)*(maxSum+1) > maxDiagonalTableEntries {
		return nil, fmt.Errorf("curve: diagonal tables for %v exceed %d entries", u, maxDiagonalTableEntries)
	}
	dg := &Diagonal{u: u, prefix: make([][]uint64, d)}
	// counts for j=1: 1 for t in [0, s).
	cur := make([]uint64, s)
	for t := range cur {
		cur[t] = 1
	}
	for j := 1; j <= d; j++ {
		if j > 1 {
			// counts[j][t] = Σ_{v=0}^{min(s-1,t)} counts[j-1][t-v], computed
			// from the previous prefix row in O(1) per t.
			prevPrefix := dg.prefix[j-2]
			next := make([]uint64, int64(j)*(s-1)+1)
			for t := int64(0); t < int64(len(next)); t++ {
				hi := t // counts[j-1] summed over t-v for v in [0, min(s-1,t)]
				lo := t - (s - 1)
				next[t] = prefixAt(prevPrefix, hi)
				if lo > 0 {
					next[t] -= prefixAt(prevPrefix, lo-1)
				}
			}
			cur = next
		}
		p := make([]uint64, len(cur))
		var run uint64
		for t := range cur {
			run += cur[t]
			p[t] = run
		}
		dg.prefix[j-1] = p
	}
	dg.cum = make([]uint64, maxSum+2)
	top := dg.prefix[d-1]
	for t := int64(0); t <= maxSum; t++ {
		if t == 0 {
			dg.cum[1] = diagCount(top, 0)
		} else {
			dg.cum[t+1] = dg.cum[t] + diagCount(top, t)
		}
	}
	if dg.cum[maxSum+1] != u.N() {
		return nil, fmt.Errorf("curve: diagonal table self-check failed for %v", u)
	}
	return dg, nil
}

// MustDiagonal is NewDiagonal for known-good universes. It panics iff
// NewDiagonal would return an error (a universe too large for the diagonal
// table, or a failed table self-check), so it is safe exactly where the
// universe is a compile-time constant — tests, examples, and static tables.
// Code handling caller-supplied dimensions must use NewDiagonal and
// propagate the error.
func MustDiagonal(u *grid.Universe) *Diagonal {
	dg, err := NewDiagonal(u)
	if err != nil {
		panic(err)
	}
	return dg
}

// prefixAt reads a prefix row with clamping: S(t<0) = 0, S(t ≥ len) = total.
func prefixAt(prefix []uint64, t int64) uint64 {
	if t < 0 {
		return 0
	}
	if t >= int64(len(prefix)) {
		return prefix[len(prefix)-1]
	}
	return prefix[t]
}

// diagCount returns counts[j][t] from the row's prefix sums.
func diagCount(prefix []uint64, t int64) uint64 {
	return prefixAt(prefix, t) - prefixAt(prefix, t-1)
}

// Universe implements Curve.
func (dg *Diagonal) Universe() *grid.Universe { return dg.u }

// Name implements Curve.
func (dg *Diagonal) Name() string { return "diagonal" }

// Index implements Curve.
func (dg *Diagonal) Index(p grid.Point) uint64 {
	d := dg.u.D()
	var t int64
	for _, v := range p {
		t += int64(v)
	}
	idx := dg.cum[t]
	rem := t
	// Most significant tie-break dimension first; the last remaining
	// dimension is forced, so stop at i = 1.
	for i := d - 1; i >= 1; i-- {
		// Digits v < p[i] feasible for the remaining i dimensions
		// contribute counts[i][rem−v]; the telescoped sum is
		// S_i(rem) − S_i(rem − p[i]).
		row := dg.prefix[i-1]
		idx += prefixAt(row, rem) - prefixAt(row, rem-int64(p[i]))
		rem -= int64(p[i])
	}
	return idx
}

// Point implements Curve.
func (dg *Diagonal) Point(idx uint64, dst grid.Point) {
	d := dg.u.D()
	s := int64(dg.u.Side())
	// Find the diagonal: largest t with cum[t] <= idx.
	t := int64(sort.Search(len(dg.cum)-1, func(t int) bool { return dg.cum[t+1] > idx }))
	r := idx - dg.cum[t]
	rem := t
	for i := d - 1; i >= 1; i-- {
		row := dg.prefix[i-1]
		base := prefixAt(row, rem)
		// Smallest v whose cumulative ways base − S_i(rem−v−1) exceed r.
		lo := rem - int64(i)*(s-1)
		if lo < 0 {
			lo = 0
		}
		hi := rem
		if hi > s-1 {
			hi = s - 1
		}
		v := lo + int64(sort.Search(int(hi-lo+1), func(dv int) bool {
			v := lo + int64(dv)
			return base-prefixAt(row, rem-v-1) > r
		}))
		r -= base - prefixAt(row, rem-v)
		dst[i] = uint32(v)
		rem -= v
	}
	dst[0] = uint32(rem)
}

var _ Curve = (*Diagonal)(nil)
