package curve

import (
	"repro/internal/bits"
	"repro/internal/grid"
)

// Gray is the Gray-code curve of Faloutsos [9, 10] in the paper's related
// work: the curve visits cells in the order of the binary-reflected Gray
// code of their interleaved (Morton) keys. Equivalently, the position of a
// cell is the Gray rank of its Z key:
//
//	G(x) = gray⁻¹(Z(x)).
//
// Consecutive positions differ in exactly one bit of one coordinate, so
// steps are axis-parallel but may jump a power-of-two distance; the curve is
// not unit-step, but is a bijection and hence an SFC in the paper's sense.
type Gray struct {
	u     *grid.Universe
	masks []uint64 // dilated mask per dimension of the underlying Z key
}

// NewGray returns the Gray-code curve over u.
func NewGray(u *grid.Universe) *Gray {
	return &Gray{u: u, masks: bits.DilatedMasks(u.D(), u.K())}
}

// Universe implements Curve.
func (g *Gray) Universe() *grid.Universe { return g.u }

// Name implements Curve.
func (g *Gray) Name() string { return "gray" }

// Index implements Curve.
func (g *Gray) Index(p grid.Point) uint64 {
	return bits.GrayDecode(bits.Interleave(p, g.u.K()))
}

// Point implements Curve.
func (g *Gray) Point(idx uint64, dst grid.Point) {
	bits.Deinterleave(bits.GrayEncode(idx), g.u.K(), dst)
}

// IndexBatch implements Batcher: byte-LUT Morton spread followed by the
// Gray-rank cascade, for d=2,3; generic interleave otherwise.
func (g *Gray) IndexBatch(coords []uint32, dst []uint64) {
	switch g.u.D() {
	case 2:
		for i := range dst {
			dst[i] = bits.GrayDecode(bits.Interleave2LUT(coords[2*i], coords[2*i+1]))
		}
	case 3:
		if g.u.K() <= 20 {
			for i := range dst {
				dst[i] = bits.GrayDecode(bits.Interleave3LUT(coords[3*i], coords[3*i+1], coords[3*i+2]))
			}
			return
		}
		fallthrough
	default:
		d, k := g.u.D(), g.u.K()
		for i := range dst {
			dst[i] = bits.GrayDecode(bits.Interleave(grid.Point(coords[i*d:(i+1)*d:(i+1)*d]), k))
		}
	}
}

// PointBatch implements Batcher.
func (g *Gray) PointBatch(indices []uint64, dst []uint32) {
	switch g.u.D() {
	case 2:
		for i, idx := range indices {
			dst[2*i], dst[2*i+1] = bits.Deinterleave2LUT(bits.GrayEncode(idx))
		}
	case 3:
		if g.u.K() <= 20 {
			for i, idx := range indices {
				dst[3*i], dst[3*i+1], dst[3*i+2] = bits.Deinterleave3LUT(bits.GrayEncode(idx))
			}
			return
		}
		fallthrough
	default:
		d, k := g.u.D(), g.u.K()
		for i, idx := range indices {
			bits.Deinterleave(bits.GrayEncode(idx), k, grid.Point(dst[i*d:(i+1)*d:(i+1)*d]))
		}
	}
}

// NeighborKeys implements NeighborKeyer: lift the curve position to the
// underlying Z key (one Gray encode), step x_i ± 1 by dilated arithmetic
// there, and take the Gray rank of each neighbor key. Stateless, safe to
// share across goroutines.
func (g *Gray) NeighborKeys(p grid.Point, base uint64, keys []uint64) {
	zbase := bits.GrayEncode(base)
	for i, m := range g.masks {
		lsb := m & -m
		cb := zbase & m
		if cb != 0 {
			keys[2*i] = bits.GrayDecode((zbase &^ m) | bits.DilatedSub(zbase, lsb, m))
		} else {
			keys[2*i] = InvalidKey
		}
		if cb != m {
			keys[2*i+1] = bits.GrayDecode((zbase &^ m) | bits.DilatedAdd(zbase, lsb, m))
		} else {
			keys[2*i+1] = InvalidKey
		}
	}
}

// NeighborKeysTorus implements NeighborKeyer.
func (g *Gray) NeighborKeysTorus(p grid.Point, base uint64, keys []uint64) {
	zbase := bits.GrayEncode(base)
	side := g.u.Side()
	for i, m := range g.masks {
		lsb := m & -m
		if side > 2 {
			keys[2*i] = bits.GrayDecode((zbase &^ m) | bits.DilatedSub(zbase, lsb, m))
		} else {
			keys[2*i] = InvalidKey
		}
		if side > 1 {
			keys[2*i+1] = bits.GrayDecode((zbase &^ m) | bits.DilatedAdd(zbase, lsb, m))
		} else {
			keys[2*i+1] = InvalidKey
		}
	}
}

// NeighborKeysBlock implements NeighborKeyer.
func (g *Gray) NeighborKeysBlock(_ []uint32, bases []uint64, keys []uint64) {
	nd := 2 * len(g.masks)
	for j, base := range bases {
		g.NeighborKeys(nil, base, keys[j*nd:(j+1)*nd])
	}
}

// NeighborKeysTorusBlock implements NeighborKeyer.
func (g *Gray) NeighborKeysTorusBlock(_ []uint32, bases []uint64, keys []uint64) {
	nd := 2 * len(g.masks)
	for j, base := range bases {
		g.NeighborKeysTorus(nil, base, keys[j*nd:(j+1)*nd])
	}
}

var (
	_ Curve         = (*Gray)(nil)
	_ Batcher       = (*Gray)(nil)
	_ NeighborKeyer = (*Gray)(nil)
)
