package curve

import (
	"repro/internal/bits"
	"repro/internal/grid"
)

// Gray is the Gray-code curve of Faloutsos [9, 10] in the paper's related
// work: the curve visits cells in the order of the binary-reflected Gray
// code of their interleaved (Morton) keys. Equivalently, the position of a
// cell is the Gray rank of its Z key:
//
//	G(x) = gray⁻¹(Z(x)).
//
// Consecutive positions differ in exactly one bit of one coordinate, so
// steps are axis-parallel but may jump a power-of-two distance; the curve is
// not unit-step, but is a bijection and hence an SFC in the paper's sense.
type Gray struct {
	u *grid.Universe
}

// NewGray returns the Gray-code curve over u.
func NewGray(u *grid.Universe) *Gray { return &Gray{u: u} }

// Universe implements Curve.
func (g *Gray) Universe() *grid.Universe { return g.u }

// Name implements Curve.
func (g *Gray) Name() string { return "gray" }

// Index implements Curve.
func (g *Gray) Index(p grid.Point) uint64 {
	return bits.GrayDecode(bits.Interleave(p, g.u.K()))
}

// Point implements Curve.
func (g *Gray) Point(idx uint64, dst grid.Point) {
	bits.Deinterleave(bits.GrayEncode(idx), g.u.K(), dst)
}

var _ Curve = (*Gray)(nil)
