package curve

import (
	"fmt"

	"repro/internal/grid"
)

// AxisPermuted wraps a curve with a permutation of the grid axes: the
// wrapped curve sees coordinate i of the underlying curve at axis perm[i].
// Since an axis permutation is an isometry of the grid (it preserves
// Manhattan and Euclidean distances and the neighbor relation), every
// stretch metric of the paper is invariant under it — a fact the test suite
// exploits. The paper notes (§IV.B) that the Z curves obtained by
// interleaving dimensions in different orders are all equivalent for the
// metrics considered.
type AxisPermuted struct {
	inner Curve
	perm  []int // position i of the inner point reads axis perm[i] of the outer point
	inv   []int
}

// NewAxisPermuted wraps inner so that outer axis perm[i] maps to inner
// axis i. perm must be a permutation of {0, …, d−1}.
func NewAxisPermuted(inner Curve, perm []int) (*AxisPermuted, error) {
	d := inner.Universe().D()
	if len(perm) != d {
		return nil, fmt.Errorf("curve: permutation of length %d for d=%d", len(perm), d)
	}
	seen := make([]bool, d)
	for _, v := range perm {
		if v < 0 || v >= d || seen[v] {
			return nil, fmt.Errorf("curve: %v is not a permutation of 0..%d", perm, d-1)
		}
		seen[v] = true
	}
	inv := make([]int, d)
	for i, v := range perm {
		inv[v] = i
	}
	p := make([]int, d)
	copy(p, perm)
	return &AxisPermuted{inner: inner, perm: p, inv: inv}, nil
}

// Universe implements Curve.
func (a *AxisPermuted) Universe() *grid.Universe { return a.inner.Universe() }

// Name implements Curve.
func (a *AxisPermuted) Name() string { return a.inner.Name() + "-axperm" }

// Index implements Curve.
func (a *AxisPermuted) Index(p grid.Point) uint64 {
	q := make(grid.Point, len(p))
	for i := range q {
		q[i] = p[a.perm[i]]
	}
	return a.inner.Index(q)
}

// Point implements Curve.
func (a *AxisPermuted) Point(idx uint64, dst grid.Point) {
	q := make(grid.Point, len(dst))
	a.inner.Point(idx, q)
	for i, v := range q {
		dst[a.perm[i]] = v
	}
}

var _ Curve = (*AxisPermuted)(nil)

// Reflected wraps a curve with per-axis coordinate reflections
// (x → side−1−x on the axes selected by mask). Reflections are grid
// isometries, so stretch metrics are invariant under them as well.
type Reflected struct {
	inner Curve
	mask  uint64 // bit i set: axis i reflected
}

// NewReflected wraps inner, reflecting every axis whose bit is set in mask.
func NewReflected(inner Curve, mask uint64) *Reflected {
	return &Reflected{inner: inner, mask: mask}
}

// Universe implements Curve.
func (r *Reflected) Universe() *grid.Universe { return r.inner.Universe() }

// Name implements Curve.
func (r *Reflected) Name() string { return r.inner.Name() + "-reflect" }

// Index implements Curve.
func (r *Reflected) Index(p grid.Point) uint64 {
	side := r.Universe().Side()
	q := make(grid.Point, len(p))
	for i := range q {
		if r.mask&(1<<uint(i)) != 0 {
			q[i] = side - 1 - p[i]
		} else {
			q[i] = p[i]
		}
	}
	return r.inner.Index(q)
}

// Point implements Curve.
func (r *Reflected) Point(idx uint64, dst grid.Point) {
	r.inner.Point(idx, dst)
	side := r.Universe().Side()
	for i := range dst {
		if r.mask&(1<<uint(i)) != 0 {
			dst[i] = side - 1 - dst[i]
		}
	}
}

var _ Curve = (*Reflected)(nil)

// Reversed wraps a curve with index reversal: π'(p) = n−1−π(p). Reversal
// preserves |π(a)−π(b)| exactly, so every stretch metric is invariant.
type Reversed struct {
	inner Curve
}

// NewReversed returns the index-reversed curve.
func NewReversed(inner Curve) *Reversed { return &Reversed{inner: inner} }

// Universe implements Curve.
func (r *Reversed) Universe() *grid.Universe { return r.inner.Universe() }

// Name implements Curve.
func (r *Reversed) Name() string { return r.inner.Name() + "-reversed" }

// Index implements Curve.
func (r *Reversed) Index(p grid.Point) uint64 {
	return r.Universe().N() - 1 - r.inner.Index(p)
}

// Point implements Curve.
func (r *Reversed) Point(idx uint64, dst grid.Point) {
	r.inner.Point(r.Universe().N()-1-idx, dst)
}

var _ Curve = (*Reversed)(nil)
