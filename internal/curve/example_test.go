package curve_test

import (
	"fmt"

	"repro/internal/curve"
	"repro/internal/grid"
)

func ExampleZ_Index() {
	// The paper's worked example (§IV.B): d=3, k=3,
	// Z(101, 010, 011) = 100011101.
	u := grid.MustNew(3, 3)
	z := curve.NewZ(u)
	p := u.MustPoint(0b101, 0b010, 0b011)
	fmt.Printf("%09b\n", z.Index(p))
	// Output: 100011101
}

func ExampleSimple_Index() {
	// Eq. (8): S(α) = Σ x_i · side^(i−1).
	u := grid.MustNew(2, 3)
	s := curve.NewSimple(u)
	fmt.Println(s.Index(u.MustPoint(3, 5)))
	// Output: 43
}

func ExampleByName() {
	u := grid.MustNew(2, 2)
	c, err := curve.ByName("hilbert", u, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(c.Name(), curve.IsUnitStep(c))
	// Output: hilbert true
}

func ExampleDist() {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	a := u.MustPoint(3, 0)
	b := u.MustPoint(4, 0) // crossing the top-level quadrant boundary
	fmt.Println(curve.Dist(z, a, b))
	// Output: 22
}

func ExampleFromOrder() {
	// Figure 1's curve π2, which visits A=(0,1), B=(1,0), C=(1,1), D=(0,0).
	u := grid.MustNew(2, 1)
	lin := func(x, y uint32) uint64 { return u.Linear(u.MustPoint(x, y)) }
	pi2, err := curve.FromOrder(u, "pi2", []uint64{lin(0, 1), lin(1, 0), lin(1, 1), lin(0, 0)})
	if err != nil {
		panic(err)
	}
	fmt.Println(pi2.Index(u.MustPoint(0, 0)))
	// Output: 3
}
