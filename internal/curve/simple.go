package curve

import (
	"repro/internal/grid"
)

// Simple is the paper's "simple curve" (§IV.C, eq. 8): plain row-major
// numbering with dimension 1 least significant,
//
//	S(α) = Σ_{i=1}^{d} x_i · side^(i−1).
//
// Theorem 3: Davg(S) ~ (1/d)·n^(1−1/d), matching the Z curve. Proposition 2:
// Dmax(S) = n^(1−1/d) exactly.
type Simple struct {
	u *grid.Universe
}

// NewSimple returns the simple curve over u.
func NewSimple(u *grid.Universe) *Simple { return &Simple{u: u} }

// Universe implements Curve.
func (s *Simple) Universe() *grid.Universe { return s.u }

// Name implements Curve.
func (s *Simple) Name() string { return "simple" }

// Index implements Curve; it coincides with the universe's canonical
// row-major linear index.
func (s *Simple) Index(p grid.Point) uint64 { return s.u.Linear(p) }

// Point implements Curve.
func (s *Simple) Point(idx uint64, dst grid.Point) { s.u.FromLinear(idx, dst) }

var _ Curve = (*Simple)(nil)

// Snake is the boustrophedon ("lawnmower") curve: row-major order with the
// direction of traversal along each dimension alternating, so that
// consecutive curve positions are always nearest neighbors. It is the
// continuous cousin of the simple curve and shares its asymptotic
// average NN-stretch; the paper does not analyze it separately, but it is a
// useful unit-step baseline.
type Snake struct {
	u *grid.Universe
}

// NewSnake returns the snake curve over u.
func NewSnake(u *grid.Universe) *Snake { return &Snake{u: u} }

// Universe implements Curve.
func (s *Snake) Universe() *grid.Universe { return s.u }

// Name implements Curve.
func (s *Snake) Name() string { return "snake" }

// Index implements Curve. Processing dimensions from most significant
// (dimension d) to least, the digit for dimension i is reflected exactly
// when the sum of the original coordinates of all higher dimensions is odd.
// Toggling that parity reverses the entire traversal of the lower-
// dimensional block, which is what makes consecutive positions nearest
// neighbors across block boundaries.
func (s *Snake) Index(p grid.Point) uint64 {
	side := uint64(s.u.Side())
	d := s.u.D()
	var idx uint64
	var sumHigher uint64
	for i := d - 1; i >= 0; i-- {
		c := uint64(p[i])
		digit := c
		if sumHigher&1 == 1 {
			digit = side - 1 - c
		}
		idx = idx*side + digit
		sumHigher += c
	}
	return idx
}

// Point implements Curve.
func (s *Snake) Point(idx uint64, dst grid.Point) {
	side := uint64(s.u.Side())
	d := s.u.D()
	var sumHigher uint64
	for i := d - 1; i >= 0; i-- {
		div := grid.Pow64(side, i)
		digit := idx / div
		idx -= digit * div
		c := digit
		if sumHigher&1 == 1 {
			c = side - 1 - digit
		}
		dst[i] = uint32(c)
		sumHigher += c
	}
}

var _ Curve = (*Snake)(nil)
