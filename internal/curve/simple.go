package curve

import (
	"repro/internal/grid"
)

// Simple is the paper's "simple curve" (§IV.C, eq. 8): plain row-major
// numbering with dimension 1 least significant,
//
//	S(α) = Σ_{i=1}^{d} x_i · side^(i−1).
//
// Theorem 3: Davg(S) ~ (1/d)·n^(1−1/d), matching the Z curve. Proposition 2:
// Dmax(S) = n^(1−1/d) exactly.
type Simple struct {
	u     *grid.Universe
	masks []uint64 // contiguous per-dimension masks of the linear index
}

// NewSimple returns the simple curve over u.
func NewSimple(u *grid.Universe) *Simple {
	return &Simple{u: u, masks: linearMasks(u)}
}

// linearMasks returns one mask per dimension of the row-major linear index:
// coordinate i occupies the contiguous bits [k·i, k·(i+1)). A contiguous
// mask is a degenerate dilated mask, so the same dilated add/subtract that
// drives the Z curve's neighbor keys applies verbatim.
func linearMasks(u *grid.Universe) []uint64 {
	d, k := u.D(), u.K()
	masks := make([]uint64, d)
	m := uint64(u.Side()) - 1
	for i := 0; i < d; i++ {
		masks[i] = m << uint(k*i)
	}
	return masks
}

// Universe implements Curve.
func (s *Simple) Universe() *grid.Universe { return s.u }

// Name implements Curve.
func (s *Simple) Name() string { return "simple" }

// Index implements Curve; it coincides with the universe's canonical
// row-major linear index.
func (s *Simple) Index(p grid.Point) uint64 { return s.u.Linear(p) }

// Point implements Curve.
func (s *Simple) Point(idx uint64, dst grid.Point) { s.u.FromLinear(idx, dst) }

// IndexBatch implements Batcher: the side length is a power of two, so the
// row-major index is a plain bit concatenation.
func (s *Simple) IndexBatch(coords []uint32, dst []uint64) {
	d, k := s.u.D(), uint(s.u.K())
	for i := range dst {
		row := coords[i*d : (i+1)*d : (i+1)*d]
		var idx uint64
		for j := d - 1; j >= 0; j-- {
			idx = idx<<k | uint64(row[j])
		}
		dst[i] = idx
	}
}

// PointBatch implements Batcher.
func (s *Simple) PointBatch(indices []uint64, dst []uint32) {
	d, k := s.u.D(), uint(s.u.K())
	mask := uint64(s.u.Side()) - 1
	for i, idx := range indices {
		row := dst[i*d : (i+1)*d : (i+1)*d]
		for j := 0; j < d; j++ {
			row[j] = uint32(idx & mask)
			idx >>= k
		}
	}
}

// NeighborKeys implements NeighborKeyer via the shared dilated-arithmetic
// helper over the contiguous per-dimension masks. Stateless, so safe to
// share across goroutines.
func (s *Simple) NeighborKeys(p grid.Point, base uint64, keys []uint64) {
	neighborKeysDilated(base, s.masks, keys)
}

// NeighborKeysTorus implements NeighborKeyer.
func (s *Simple) NeighborKeysTorus(p grid.Point, base uint64, keys []uint64) {
	neighborKeysDilatedTorus(base, s.masks, keys, s.u.Side())
}

// NeighborKeysBlock implements NeighborKeyer.
func (s *Simple) NeighborKeysBlock(_ []uint32, bases []uint64, keys []uint64) {
	neighborBlockDilated(bases, s.masks, keys)
}

// NeighborKeysTorusBlock implements NeighborKeyer.
func (s *Simple) NeighborKeysTorusBlock(_ []uint32, bases []uint64, keys []uint64) {
	neighborBlockDilatedTorus(bases, s.masks, keys, s.u.Side())
}

var (
	_ Curve         = (*Simple)(nil)
	_ Batcher       = (*Simple)(nil)
	_ NeighborKeyer = (*Simple)(nil)
)

// Snake is the boustrophedon ("lawnmower") curve: row-major order with the
// direction of traversal along each dimension alternating, so that
// consecutive curve positions are always nearest neighbors. It is the
// continuous cousin of the simple curve and shares its asymptotic
// average NN-stretch; the paper does not analyze it separately, but it is a
// useful unit-step baseline.
type Snake struct {
	u    *grid.Universe
	pows []uint64 // side^i for i = 0 … d−1
}

// NewSnake returns the snake curve over u.
func NewSnake(u *grid.Universe) *Snake {
	pows := make([]uint64, u.D())
	for i := range pows {
		pows[i] = grid.Pow64(uint64(u.Side()), i)
	}
	return &Snake{u: u, pows: pows}
}

// Universe implements Curve.
func (s *Snake) Universe() *grid.Universe { return s.u }

// Name implements Curve.
func (s *Snake) Name() string { return "snake" }

// Index implements Curve. Processing dimensions from most significant
// (dimension d) to least, the digit for dimension i is reflected exactly
// when the sum of the original coordinates of all higher dimensions is odd.
// Toggling that parity reverses the entire traversal of the lower-
// dimensional block, which is what makes consecutive positions nearest
// neighbors across block boundaries.
func (s *Snake) Index(p grid.Point) uint64 {
	side := uint64(s.u.Side())
	d := s.u.D()
	var idx uint64
	var sumHigher uint64
	for i := d - 1; i >= 0; i-- {
		c := uint64(p[i])
		digit := c
		if sumHigher&1 == 1 {
			digit = side - 1 - c
		}
		idx = idx*side + digit
		sumHigher += c
	}
	return idx
}

// Point implements Curve.
func (s *Snake) Point(idx uint64, dst grid.Point) {
	side := uint64(s.u.Side())
	d := s.u.D()
	var sumHigher uint64
	for i := d - 1; i >= 0; i-- {
		div := s.pows[i]
		digit := idx / div
		idx -= digit * div
		c := digit
		if sumHigher&1 == 1 {
			c = side - 1 - digit
		}
		dst[i] = uint32(c)
		sumHigher += c
	}
}

// IndexBatch implements Batcher: the scalar digit-reflection loop with the
// side length hoisted, shifts instead of multiplies (side is a power of
// two), and no interface dispatch per point.
func (s *Snake) IndexBatch(coords []uint32, dst []uint64) {
	d, k := s.u.D(), uint(s.u.K())
	max := uint64(s.u.Side()) - 1
	for i := range dst {
		row := coords[i*d : (i+1)*d : (i+1)*d]
		var idx, sumHigher uint64
		for j := d - 1; j >= 0; j-- {
			c := uint64(row[j])
			digit := c
			if sumHigher&1 == 1 {
				digit = max - c
			}
			idx = idx<<k | digit
			sumHigher += c
		}
		dst[i] = idx
	}
}

// PointBatch implements Batcher: digits are extracted by shift/mask instead
// of the scalar path's Pow64 division per dimension.
func (s *Snake) PointBatch(indices []uint64, dst []uint32) {
	d, k := s.u.D(), uint(s.u.K())
	max := uint64(s.u.Side()) - 1
	for i, idx := range indices {
		row := dst[i*d : (i+1)*d : (i+1)*d]
		var sumHigher uint64
		for j := d - 1; j >= 0; j-- {
			digit := (idx >> (uint(j) * k)) & max
			c := digit
			if sumHigher&1 == 1 {
				c = max - digit
			}
			row[j] = uint32(c)
			sumHigher += c
		}
	}
}

// neighborKeys derives the key of p ± e_dim directly from p's own key. A
// ±1 step (or a torus wrap, side−1 being odd) in dimension dim changes the
// coordinate sum above every lower dimension by an odd amount, so it flips
// the reflection parity of all lower digits at once: the new key keeps the
// digits above dim, replaces dim's digit with the reflected-or-not new
// coordinate, and complements every bit below — O(d) integer ops per cell
// with no re-encode of the unchanged dimensions.
func (s *Snake) neighborKeys(p grid.Point, base uint64, keys []uint64, torus bool) {
	d, k := s.u.D(), uint(s.u.K())
	side := s.u.Side()
	max := side - 1
	var par uint32 // parity of the coordinate sum above the current dimension
	for dim := d - 1; dim >= 0; dim-- {
		sh := uint(dim) * k
		lowMask := uint64(1)<<sh - 1
		rest := base &^ (uint64(max)<<sh | lowMask)
		lowComp := ^base & lowMask
		c := p[dim]
		var loOK, hiOK bool
		var loC, hiC uint32
		if torus {
			if loOK = side > 2; loOK {
				loC = (c + max) & max
			}
			if hiOK = side > 1; hiOK {
				hiC = (c + 1) & max
			}
		} else {
			if loOK = c > 0; loOK {
				loC = c - 1
			}
			if hiOK = c < max; hiOK {
				hiC = c + 1
			}
		}
		if loOK {
			dg := loC
			if par == 1 {
				dg = max - loC
			}
			keys[2*dim] = rest | uint64(dg)<<sh | lowComp
		} else {
			keys[2*dim] = InvalidKey
		}
		if hiOK {
			dg := hiC
			if par == 1 {
				dg = max - hiC
			}
			keys[2*dim+1] = rest | uint64(dg)<<sh | lowComp
		} else {
			keys[2*dim+1] = InvalidKey
		}
		par ^= c & 1
	}
}

// NeighborKeys implements NeighborKeyer. Stateless, so safe to share across
// goroutines.
func (s *Snake) NeighborKeys(p grid.Point, base uint64, keys []uint64) {
	s.neighborKeys(p, base, keys, false)
}

// NeighborKeysTorus implements NeighborKeyer.
func (s *Snake) NeighborKeysTorus(p grid.Point, base uint64, keys []uint64) {
	s.neighborKeys(p, base, keys, true)
}

// NeighborKeysBlock implements NeighborKeyer.
func (s *Snake) NeighborKeysBlock(coords []uint32, bases []uint64, keys []uint64) {
	d := s.u.D()
	for j, base := range bases {
		s.neighborKeys(grid.Point(coords[j*d:(j+1)*d]), base, keys[j*2*d:(j+1)*2*d], false)
	}
}

// NeighborKeysTorusBlock implements NeighborKeyer.
func (s *Snake) NeighborKeysTorusBlock(coords []uint32, bases []uint64, keys []uint64) {
	d := s.u.D()
	for j, base := range bases {
		s.neighborKeys(grid.Point(coords[j*d:(j+1)*d]), base, keys[j*2*d:(j+1)*2*d], true)
	}
}

var (
	_ Curve         = (*Snake)(nil)
	_ Batcher       = (*Snake)(nil)
	_ NeighborKeyer = (*Snake)(nil)
)
