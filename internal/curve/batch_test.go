package curve

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// batchCases are the (d, k) universes the differential tests enumerate
// exhaustively (n ≤ 4096 each).
var batchCases = []struct{ d, k int }{
	{1, 0}, {1, 1}, {1, 2}, {1, 7}, {1, 12},
	{2, 0}, {2, 1}, {2, 2}, {2, 4}, {2, 6},
	{3, 0}, {3, 1}, {3, 2}, {3, 4},
}

// batchBigCases are sampled (not enumerated) universes near the key-width
// budget (k ≤ 31 so coordinates fit uint32); curves whose factories reject
// large universes are skipped.
var batchBigCases = []struct{ d, k int }{
	{1, 31}, {2, 25}, {3, 18},
}

// wantNeighborKeys computes the expected NeighborKeys output the slow way,
// through the scalar Index on explicitly stepped points.
func wantNeighborKeys(c Curve, p grid.Point, torus bool) []uint64 {
	u := c.Universe()
	d, side := u.D(), u.Side()
	keys := make([]uint64, 2*d)
	q := p.Clone()
	for dim := 0; dim < d; dim++ {
		keys[2*dim] = InvalidKey
		keys[2*dim+1] = InvalidKey
		if torus {
			if side > 2 {
				q[dim] = (p[dim] + side - 1) & (side - 1)
				keys[2*dim] = c.Index(q)
			}
			if side > 1 {
				q[dim] = (p[dim] + 1) & (side - 1)
				keys[2*dim+1] = c.Index(q)
			}
		} else {
			if p[dim] > 0 {
				q[dim] = p[dim] - 1
				keys[2*dim] = c.Index(q)
			}
			if p[dim]+1 < side {
				q[dim] = p[dim] + 1
				keys[2*dim+1] = c.Index(q)
			}
		}
		q[dim] = p[dim]
	}
	return keys
}

// checkKernelAt verifies IndexBatch, PointBatch, NeighborKeys and
// NeighborKeysTorus against the scalar methods on the given block of points.
func checkKernelAt(t *testing.T, c Curve, coords []uint32) {
	t.Helper()
	u := c.Universe()
	d := u.D()
	n := len(coords) / d

	b := NewBatcher(c)
	keys := make([]uint64, n)
	b.IndexBatch(coords, keys)
	for i := 0; i < n; i++ {
		p := grid.Point(coords[i*d : (i+1)*d])
		if want := c.Index(p); keys[i] != want {
			t.Fatalf("%s: IndexBatch(%v) = %d, scalar Index = %d", c.Name(), p, keys[i], want)
		}
	}

	back := make([]uint32, len(coords))
	b.PointBatch(keys, back)
	q := u.NewPoint()
	for i := 0; i < n; i++ {
		c.Point(keys[i], q)
		if !q.Equal(grid.Point(back[i*d : (i+1)*d])) {
			t.Fatalf("%s: PointBatch(%d) = %v, scalar Point = %v", c.Name(), keys[i], back[i*d:(i+1)*d], q)
		}
	}

	nk := NewNeighborKeyer(c)
	got := make([]uint64, 2*d)
	for i := 0; i < n; i++ {
		p := grid.Point(coords[i*d : (i+1)*d])
		nk.NeighborKeys(p, keys[i], got)
		want := wantNeighborKeys(c, p, false)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s: NeighborKeys(%v)[%d] = %#x, want %#x", c.Name(), p, j, got[j], want[j])
			}
		}
		nk.NeighborKeysTorus(p, keys[i], got)
		want = wantNeighborKeys(c, p, true)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s: NeighborKeysTorus(%v)[%d] = %#x, want %#x", c.Name(), p, j, got[j], want[j])
			}
		}
	}

	// The block forms must agree with the per-cell forms on the whole block.
	blk := make([]uint64, n*2*d)
	nk.NeighborKeysBlock(coords, keys, blk)
	for i := 0; i < n; i++ {
		p := grid.Point(coords[i*d : (i+1)*d])
		want := wantNeighborKeys(c, p, false)
		for j := range want {
			if blk[i*2*d+j] != want[j] {
				t.Fatalf("%s: NeighborKeysBlock cell %d slot %d = %#x, want %#x",
					c.Name(), i, j, blk[i*2*d+j], want[j])
			}
		}
	}
	nk.NeighborKeysTorusBlock(coords, keys, blk)
	for i := 0; i < n; i++ {
		p := grid.Point(coords[i*d : (i+1)*d])
		want := wantNeighborKeys(c, p, true)
		for j := range want {
			if blk[i*2*d+j] != want[j] {
				t.Fatalf("%s: NeighborKeysTorusBlock cell %d slot %d = %#x, want %#x",
					c.Name(), i, j, blk[i*2*d+j], want[j])
			}
		}
	}
}

// TestKernelMatchesScalar is the differential test of the satellite list:
// for every registered curve over d ∈ {1,2,3} and several k, the batch and
// neighbor-key kernels must bit-match the scalar Index/Point.
func TestKernelMatchesScalar(t *testing.T) {
	for _, tc := range batchCases {
		u := grid.MustNew(tc.d, tc.k)
		coords := make([]uint32, int(u.N())*tc.d)
		p := u.NewPoint()
		for lin := uint64(0); lin < u.N(); lin++ {
			u.FromLinear(lin, p)
			copy(coords[int(lin)*tc.d:], p)
		}
		for _, name := range Names() {
			c, err := ByName(name, u, 7)
			if err != nil {
				t.Fatalf("d=%d k=%d %s: %v", tc.d, tc.k, name, err)
			}
			checkKernelAt(t, c, coords)
		}
	}
}

// TestKernelMatchesScalarSampled repeats the differential check on sampled
// points of near-maximal universes, where enumeration is impossible.
func TestKernelMatchesScalarSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const samples = 512
	for _, tc := range batchBigCases {
		u := grid.MustNew(tc.d, tc.k)
		mask := u.Side() - 1
		coords := make([]uint32, samples*tc.d)
		for i := range coords {
			coords[i] = rng.Uint32() & mask
		}
		for _, name := range Names() {
			c, err := ByName(name, u, 7)
			if err != nil {
				// Table-backed curves reject universes this large.
				continue
			}
			checkKernelAt(t, c, coords)
		}
	}
}

// TestBatchKeyerAdapter drives the batched-encode NeighborKeyer adapter,
// which is otherwise shadowed by the curves' native keyers.
func TestBatchKeyerAdapter(t *testing.T) {
	u := grid.MustNew(3, 3)
	c := NewHilbert(u) // Batcher but not NeighborKeyer
	if _, ok := Curve(c).(NeighborKeyer); ok {
		t.Fatal("Hilbert unexpectedly implements NeighborKeyer; test needs updating")
	}
	nk := NewNeighborKeyer(c)
	if _, ok := nk.(*batchKeyer); !ok {
		t.Fatalf("NewNeighborKeyer(hilbert) = %T, want *batchKeyer", nk)
	}
	got := make([]uint64, 2*u.D())
	u.Cells(func(_ uint64, p grid.Point) bool {
		base := c.Index(p)
		nk.NeighborKeys(p, base, got)
		want := wantNeighborKeys(c, p, false)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("NeighborKeys(%v)[%d] = %#x, want %#x", p, j, got[j], want[j])
			}
		}
		nk.NeighborKeysTorus(p, base, got)
		want = wantNeighborKeys(c, p, true)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("NeighborKeysTorus(%v)[%d] = %#x, want %#x", p, j, got[j], want[j])
			}
		}
		return true
	})
}

// TestHilbertTableBuilds pins that the state-table derivation from the
// scalar Skilling implementation succeeds for the dimensions the sweeps
// use; a nil table silently degrades Hilbert batches to scalar speed.
func TestHilbertTableBuilds(t *testing.T) {
	for d := 1; d <= 4; d++ {
		if hilbertTableFor(d) == nil {
			t.Errorf("hilbertTableFor(%d) = nil, want a verified state table", d)
		}
	}
	if tab := hilbertTableFor(2); tab != nil && len(tab.enc) != 4 {
		t.Errorf("d=2 Hilbert machine has %d states, want 4", len(tab.enc))
	}
	if tab := hilbertTableFor(3); tab != nil && len(tab.enc) != 12 {
		// Probe-derived machines may intern any reachable subset; log the
		// count for the record but only fail when it explodes.
		if len(tab.enc) > 64 {
			t.Errorf("d=3 Hilbert machine has %d states, want a small constant", len(tab.enc))
		}
		t.Logf("d=3 Hilbert machine: %d states", len(tab.enc))
	}
}

// TestHasKernel pins which curves advertise native kernels and that
// ScalarOnly hides them.
func TestHasKernel(t *testing.T) {
	u := grid.MustNew(2, 4)
	want := map[string]bool{
		"z": true, "simple": true, "snake": true, "gray": true,
		"hilbert": true, "table": true,
		"random": false, "diagonal": false, "bitrev": false,
	}
	for _, name := range Names() {
		c, err := ByName(name, u, 7)
		if err != nil {
			t.Fatal(err)
		}
		w, pinned := want[name]
		if !pinned {
			continue
		}
		if got := HasKernel(c); got != w {
			t.Errorf("HasKernel(%s) = %v, want %v", name, got, w)
		}
		if HasKernel(ScalarOnly(c)) {
			t.Errorf("HasKernel(ScalarOnly(%s)) = true, want false", name)
		}
		s := ScalarOnly(c)
		p := u.MustPoint(3, 9)
		if s.Index(p) != c.Index(p) || s.Name() != c.Name() {
			t.Errorf("ScalarOnly(%s) changes scalar results", name)
		}
	}
}
