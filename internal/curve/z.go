package curve

import (
	"repro/internal/bits"
	"repro/internal/grid"
)

// Z is the d-dimensional Z curve (Morton order) of §IV.B: the key of a cell
// interleaves the coordinate bits, most significant bits first, dimension 1
// contributing the most significant bit of each group:
//
//	Z(x) = x1^1 x2^1 … xd^1 x1^2 … xd^2 … x1^k … xd^k
//
// Theorem 2 of the paper: Davg(Z) ~ (1/d)·n^(1−1/d), within a factor 1.5 of
// the Theorem 1 lower bound irrespective of d.
type Z struct {
	u *grid.Universe
}

// NewZ returns the Z curve over u.
func NewZ(u *grid.Universe) *Z { return &Z{u: u} }

// Universe implements Curve.
func (z *Z) Universe() *grid.Universe { return z.u }

// Name implements Curve.
func (z *Z) Name() string { return "z" }

// Index implements Curve: the Morton key of p.
func (z *Z) Index(p grid.Point) uint64 {
	switch z.u.D() {
	case 1:
		return uint64(p[0])
	case 2:
		return bits.Interleave2(p[0], p[1])
	case 3:
		if z.u.K() <= 20 {
			return bits.Interleave3(p[0], p[1], p[2])
		}
	}
	return bits.Interleave(p, z.u.K())
}

// Point implements Curve.
func (z *Z) Point(idx uint64, dst grid.Point) {
	switch z.u.D() {
	case 1:
		dst[0] = uint32(idx)
		return
	case 2:
		dst[0], dst[1] = bits.Deinterleave2(idx)
		return
	case 3:
		if z.u.K() <= 20 {
			dst[0], dst[1], dst[2] = bits.Deinterleave3(idx)
			return
		}
	}
	bits.Deinterleave(idx, z.u.K(), dst)
}

var _ Curve = (*Z)(nil)
