package curve

import (
	"repro/internal/bits"
	"repro/internal/grid"
)

// Z is the d-dimensional Z curve (Morton order) of §IV.B: the key of a cell
// interleaves the coordinate bits, most significant bits first, dimension 1
// contributing the most significant bit of each group:
//
//	Z(x) = x1^1 x2^1 … xd^1 x1^2 … xd^2 … x1^k … xd^k
//
// Theorem 2 of the paper: Davg(Z) ~ (1/d)·n^(1−1/d), within a factor 1.5 of
// the Theorem 1 lower bound irrespective of d.
type Z struct {
	u     *grid.Universe
	masks []uint64 // dilated mask per dimension
}

// NewZ returns the Z curve over u.
func NewZ(u *grid.Universe) *Z {
	return &Z{u: u, masks: bits.DilatedMasks(u.D(), u.K())}
}

// Universe implements Curve.
func (z *Z) Universe() *grid.Universe { return z.u }

// Name implements Curve.
func (z *Z) Name() string { return "z" }

// Index implements Curve: the Morton key of p.
func (z *Z) Index(p grid.Point) uint64 {
	switch z.u.D() {
	case 1:
		return uint64(p[0])
	case 2:
		return bits.Interleave2(p[0], p[1])
	case 3:
		if z.u.K() <= 20 {
			return bits.Interleave3(p[0], p[1], p[2])
		}
	}
	return bits.Interleave(p, z.u.K())
}

// Point implements Curve.
func (z *Z) Point(idx uint64, dst grid.Point) {
	switch z.u.D() {
	case 1:
		dst[0] = uint32(idx)
		return
	case 2:
		dst[0], dst[1] = bits.Deinterleave2(idx)
		return
	case 3:
		if z.u.K() <= 20 {
			dst[0], dst[1], dst[2] = bits.Deinterleave3(idx)
			return
		}
	}
	bits.Deinterleave(idx, z.u.K(), dst)
}

// IndexBatch implements Batcher with the byte-LUT Morton spreads for d=2,3.
func (z *Z) IndexBatch(coords []uint32, dst []uint64) {
	switch z.u.D() {
	case 1:
		for i := range dst {
			dst[i] = uint64(coords[i])
		}
	case 2:
		for i := range dst {
			dst[i] = bits.Interleave2LUT(coords[2*i], coords[2*i+1])
		}
	case 3:
		if z.u.K() <= 20 {
			for i := range dst {
				dst[i] = bits.Interleave3LUT(coords[3*i], coords[3*i+1], coords[3*i+2])
			}
			return
		}
		fallthrough
	default:
		d, k := z.u.D(), z.u.K()
		for i := range dst {
			dst[i] = bits.Interleave(grid.Point(coords[i*d:(i+1)*d:(i+1)*d]), k)
		}
	}
}

// PointBatch implements Batcher with the byte-LUT Morton compactions.
func (z *Z) PointBatch(indices []uint64, dst []uint32) {
	switch z.u.D() {
	case 1:
		for i, idx := range indices {
			dst[i] = uint32(idx)
		}
	case 2:
		for i, idx := range indices {
			dst[2*i], dst[2*i+1] = bits.Deinterleave2LUT(idx)
		}
	case 3:
		if z.u.K() <= 20 {
			for i, idx := range indices {
				dst[3*i], dst[3*i+1], dst[3*i+2] = bits.Deinterleave3LUT(idx)
			}
			return
		}
		fallthrough
	default:
		d, k := z.u.D(), z.u.K()
		for i, idx := range indices {
			bits.Deinterleave(idx, k, grid.Point(dst[i*d:(i+1)*d:(i+1)*d]))
		}
	}
}

// NeighborKeys implements NeighborKeyer by pure dilated-integer arithmetic:
// the key of p ± e_dim is a masked add/subtract on p's own Morton key, no
// decode/re-encode round trip. The receiver carries no mutable state, so the
// Z curve's keyer is safe to share across goroutines.
func (z *Z) NeighborKeys(p grid.Point, base uint64, keys []uint64) {
	neighborKeysDilated(base, z.masks, keys)
}

// NeighborKeysTorus implements NeighborKeyer; the coordinate wraparound
// side−1 ↔ 0 is the natural modular behavior of the dilated add/subtract.
func (z *Z) NeighborKeysTorus(p grid.Point, base uint64, keys []uint64) {
	neighborKeysDilatedTorus(base, z.masks, keys, z.u.Side())
}

// NeighborKeysBlock implements NeighborKeyer; the coords are not needed —
// every neighbor key is derived from the cell's own key.
func (z *Z) NeighborKeysBlock(_ []uint32, bases []uint64, keys []uint64) {
	neighborBlockDilated(bases, z.masks, keys)
}

// NeighborKeysTorusBlock implements NeighborKeyer.
func (z *Z) NeighborKeysTorusBlock(_ []uint32, bases []uint64, keys []uint64) {
	neighborBlockDilatedTorus(bases, z.masks, keys, z.u.Side())
}

// neighborKeysDilated fills keys with the 2·len(masks) open-grid neighbor
// keys of the cell whose key is base, one dilated mask per dimension. It
// works for any per-dimension bit layout — the Z curve's scattered masks and
// the simple/table curves' contiguous ones — because DilatedAdd/DilatedSub
// only require that each mask select all bits of one coordinate.
func neighborKeysDilated(base uint64, masks []uint64, keys []uint64) {
	for i, m := range masks {
		lsb := m & -m
		cb := base & m
		if cb != 0 {
			keys[2*i] = (base &^ m) | bits.DilatedSub(base, lsb, m)
		} else {
			keys[2*i] = InvalidKey
		}
		if cb != m {
			keys[2*i+1] = (base &^ m) | bits.DilatedAdd(base, lsb, m)
		} else {
			keys[2*i+1] = InvalidKey
		}
	}
}

// neighborKeysDilatedTorus is the periodic variant of neighborKeysDilated,
// following the torus engine's simple-graph convention: the −1 neighbor is
// emitted only for side > 2 (on a 2-cycle it coincides with the +1 one) and
// the +1 neighbor only for side > 1.
func neighborKeysDilatedTorus(base uint64, masks []uint64, keys []uint64, side uint32) {
	for i, m := range masks {
		lsb := m & -m
		if side > 2 {
			keys[2*i] = (base &^ m) | bits.DilatedSub(base, lsb, m)
		} else {
			keys[2*i] = InvalidKey
		}
		if side > 1 {
			keys[2*i+1] = (base &^ m) | bits.DilatedAdd(base, lsb, m)
		} else {
			keys[2*i+1] = InvalidKey
		}
	}
}

// neighborBlockDilated is the block loop behind the dilated curves'
// NeighborKeysBlock: per-cell function call and mask reloads are hoisted, so
// the whole sweep kernel is a straight run of integer ops. Specialized for
// the d ≤ 3 universes the sweeps live in.
func neighborBlockDilated(bases []uint64, masks []uint64, keys []uint64) {
	switch len(masks) {
	case 1:
		m := masks[0]
		for j, base := range bases {
			dilatedPair(base, m, keys[2*j:2*j+2:2*j+2])
		}
	case 2:
		m0, m1 := masks[0], masks[1]
		for j, base := range bases {
			row := keys[4*j : 4*j+4 : 4*j+4]
			dilatedPair(base, m0, row[0:2])
			dilatedPair(base, m1, row[2:4])
		}
	case 3:
		m0, m1, m2 := masks[0], masks[1], masks[2]
		for j, base := range bases {
			row := keys[6*j : 6*j+6 : 6*j+6]
			dilatedPair(base, m0, row[0:2])
			dilatedPair(base, m1, row[2:4])
			dilatedPair(base, m2, row[4:6])
		}
	default:
		nd := 2 * len(masks)
		for j, base := range bases {
			neighborKeysDilated(base, masks, keys[j*nd:(j+1)*nd])
		}
	}
}

// dilatedPair writes the −1/+1 neighbor keys for one dilated mask.
func dilatedPair(base, m uint64, out []uint64) {
	lsb := m & -m
	cb := base & m
	if cb != 0 {
		out[0] = (base &^ m) | bits.DilatedSub(base, lsb, m)
	} else {
		out[0] = InvalidKey
	}
	if cb != m {
		out[1] = (base &^ m) | bits.DilatedAdd(base, lsb, m)
	} else {
		out[1] = InvalidKey
	}
}

// neighborBlockDilatedTorus is the periodic block loop.
func neighborBlockDilatedTorus(bases []uint64, masks []uint64, keys []uint64, side uint32) {
	nd := 2 * len(masks)
	for j, base := range bases {
		neighborKeysDilatedTorus(base, masks, keys[j*nd:(j+1)*nd], side)
	}
}

var (
	_ Curve         = (*Z)(nil)
	_ Batcher       = (*Z)(nil)
	_ NeighborKeyer = (*Z)(nil)
)
