package curve

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
)

// allCurves builds one instance of every registered curve over u.
func allCurves(t *testing.T, u *grid.Universe) []Curve {
	t.Helper()
	var cs []Curve
	for _, name := range Names() {
		c, err := ByName(name, u, 12345)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		cs = append(cs, c)
	}
	return cs
}

func TestAllCurvesAreBijections(t *testing.T) {
	for _, dk := range [][2]int{{1, 5}, {2, 4}, {3, 3}, {4, 2}, {5, 1}, {2, 0}} {
		u := grid.MustNew(dk[0], dk[1])
		for _, c := range allCurves(t, u) {
			if err := Validate(c); err != nil {
				t.Errorf("%v: %v", u, err)
			}
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := ByName("peano", grid.MustNew(2, 2), 0); err == nil {
		t.Fatal("unknown curve accepted")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	want := map[string]bool{"z": true, "simple": true, "snake": true, "gray": true, "hilbert": true, "random": true, "diagonal": true, "bitrev": true, "table": true}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected name %q", n)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestZCurvePaperFigure3(t *testing.T) {
	// Figure 3: two-dimensional Z curve on an 8×8 grid. Spot-check cells
	// against the key grid in the figure (keys shown as binary, dimension 1
	// horizontal, dimension 2 vertical).
	u := grid.MustNew(2, 3)
	z := NewZ(u)
	cases := []struct {
		x1, x2 uint32
		key    uint64
	}{
		{0, 0, 0b000000},
		{1, 0, 0b000010}, // x1=001 contributes the high bit of each pair
		{0, 1, 0b000001},
		{1, 1, 0b000011},
		{2, 0, 0b001000},
		{7, 7, 0b111111},
		{2, 5, 0b011001 ^ 0}, // interleave(010, 101): pairs (0,1)(1,0)(0,1) = 01 10 01
		{4, 2, 0b100100 ^ 0}, // interleave(100, 010): 10 01 00
	}
	for _, tc := range cases {
		p := u.MustPoint(tc.x1, tc.x2)
		if got := z.Index(p); got != tc.key {
			t.Errorf("Z(%d,%d) = %06b, want %06b", tc.x1, tc.x2, got, tc.key)
		}
	}
}

func TestZCurveD1IsIdentity(t *testing.T) {
	u := grid.MustNew(1, 6)
	z := NewZ(u)
	u.Cells(func(idx uint64, p grid.Point) bool {
		if z.Index(p) != uint64(p[0]) {
			t.Fatalf("1-d Z curve not identity at %v", p)
		}
		return true
	})
}

func TestSimpleCurveEquation8(t *testing.T) {
	// S(α) = Σ x_i side^(i-1) — dimension 1 least significant.
	u := grid.MustNew(3, 2)
	s := NewSimple(u)
	p := u.MustPoint(3, 1, 2)
	want := uint64(3) + 1*4 + 2*16
	if got := s.Index(p); got != want {
		t.Fatalf("S(%v) = %d, want %d", p, got, want)
	}
}

func TestSimpleCurvePaperFigure4(t *testing.T) {
	// Figure 4: the simple curve on 8×8 sweeps dimension 1 row by row.
	u := grid.MustNew(2, 3)
	s := NewSimple(u)
	if s.Index(u.MustPoint(0, 0)) != 0 ||
		s.Index(u.MustPoint(7, 0)) != 7 ||
		s.Index(u.MustPoint(0, 1)) != 8 ||
		s.Index(u.MustPoint(7, 7)) != 63 {
		t.Fatal("simple curve order does not match Figure 4")
	}
}

func TestSnakeUnitStep(t *testing.T) {
	for _, dk := range [][2]int{{1, 5}, {2, 4}, {3, 3}, {4, 2}} {
		u := grid.MustNew(dk[0], dk[1])
		if !IsUnitStep(NewSnake(u)) {
			t.Errorf("snake not unit-step on %v", u)
		}
	}
}

func TestHilbertUnitStep(t *testing.T) {
	for _, dk := range [][2]int{{1, 5}, {2, 5}, {3, 3}, {4, 2}, {5, 2}} {
		u := grid.MustNew(dk[0], dk[1])
		if !IsUnitStep(NewHilbert(u)) {
			t.Errorf("hilbert not unit-step on %v", u)
		}
	}
}

func TestHilbert2DOrder4(t *testing.T) {
	// Classic first-order 2-d Hilbert curve on a 2×2 grid visits a U shape:
	// four distinct cells, unit steps, starting at the origin.
	u := grid.MustNew(2, 1)
	h := NewHilbert(u)
	if err := Validate(h); err != nil {
		t.Fatal(err)
	}
	p := u.NewPoint()
	h.Point(0, p)
	if p[0] != 0 || p[1] != 0 {
		t.Fatalf("Hilbert origin at %v", p)
	}
	if !IsUnitStep(h) {
		t.Fatal("order-1 Hilbert not unit step")
	}
}

func TestZAndGrayNotUnitStep(t *testing.T) {
	u := grid.MustNew(2, 2)
	if IsUnitStep(NewZ(u)) {
		t.Error("Z curve reported unit-step")
	}
	if IsUnitStep(NewGray(u)) {
		t.Error("Gray curve reported unit-step")
	}
}

func TestGrayStepsAreAxisParallel(t *testing.T) {
	// Consecutive Gray-curve cells differ in exactly one coordinate (by a
	// power of two).
	u := grid.MustNew(3, 3)
	g := NewGray(u)
	prev := u.NewPoint()
	cur := u.NewPoint()
	g.Point(0, prev)
	for idx := uint64(1); idx < u.N(); idx++ {
		g.Point(idx, cur)
		diffs := 0
		for i := range cur {
			if cur[i] != prev[i] {
				diffs++
				d := int64(cur[i]) - int64(prev[i])
				if d < 0 {
					d = -d
				}
				if d&(d-1) != 0 {
					t.Fatalf("gray step at %d moves %d along axis %d", idx, d, i)
				}
			}
		}
		if diffs != 1 {
			t.Fatalf("gray step at %d changes %d axes", idx, diffs)
		}
		copy(prev, cur)
	}
}

func TestRandomCurveDeterminism(t *testing.T) {
	u := grid.MustNew(2, 3)
	a, err := NewRandom(u, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandom(u, 99)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRandom(u, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seed() != 99 {
		t.Fatal("seed not recorded")
	}
	same := true
	differs := false
	u.Cells(func(_ uint64, p grid.Point) bool {
		if a.Index(p) != b.Index(p) {
			same = false
		}
		if a.Index(p) != c.Index(p) {
			differs = true
		}
		return true
	})
	if !same {
		t.Error("same seed produced different curves")
	}
	if !differs {
		t.Error("different seeds produced identical curves")
	}
}

func TestRandomCurveSizeLimit(t *testing.T) {
	u := grid.MustNew(3, 10) // 2^30 cells
	if _, err := NewRandom(u, 1); err == nil {
		t.Fatal("oversized random curve accepted")
	}
}

func TestDist(t *testing.T) {
	u := grid.MustNew(2, 2)
	s := NewSimple(u)
	a := u.MustPoint(0, 0)
	b := u.MustPoint(3, 0)
	if Dist(s, a, b) != 3 || Dist(s, b, a) != 3 {
		t.Fatal("Dist wrong")
	}
	if Dist(s, a, a) != 0 {
		t.Fatal("Dist self nonzero")
	}
}

func TestTransformsPreserveBijectivity(t *testing.T) {
	u := grid.MustNew(3, 2)
	base := NewZ(u)
	perm, err := NewAxisPermuted(base, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Curve{
		perm,
		NewReflected(base, 0b101),
		NewReversed(base),
		NewReflected(NewReversed(base), 0b010),
	} {
		if err := Validate(c); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestAxisPermutedValidation(t *testing.T) {
	u := grid.MustNew(3, 2)
	base := NewZ(u)
	if _, err := NewAxisPermuted(base, []int{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := NewAxisPermuted(base, []int{0, 0, 1}); err == nil {
		t.Fatal("repeated axis accepted")
	}
	if _, err := NewAxisPermuted(base, []int{0, 1, 3}); err == nil {
		t.Fatal("out-of-range axis accepted")
	}
}

func TestAxisPermutedRoundTrip(t *testing.T) {
	u := grid.MustNew(4, 2)
	base := NewHilbert(u)
	ap, err := NewAxisPermuted(base, []int{3, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(ap); err != nil {
		t.Fatal(err)
	}
}

func TestTableCurve(t *testing.T) {
	u := grid.MustNew(1, 2)
	tab, err := NewTable(u, "custom", []uint64{2, 0, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(tab); err != nil {
		t.Fatal(err)
	}
	if tab.Name() != "custom" {
		t.Fatal("name lost")
	}
	if _, err := NewTable(u, "bad", []uint64{0, 0, 1, 2}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := NewTable(u, "bad", []uint64{0, 1, 2, 4}); err == nil {
		t.Fatal("out of range accepted")
	}
	if _, err := NewTable(u, "bad", []uint64{0, 1}); err == nil {
		t.Fatal("short table accepted")
	}
}

func TestFromOrder(t *testing.T) {
	// Figure 1 curve π1 on the 2×2 grid: cells labelled
	//   A=(0,1) C=(1,1)
	//   D=(0,0) B=(1,0)
	// π1 orders C, A, B, D.
	u := grid.MustNew(2, 1)
	lin := func(x, y uint32) uint64 { return u.Linear(u.MustPoint(x, y)) }
	pi1, err := FromOrder(u, "pi1", []uint64{lin(1, 1), lin(0, 1), lin(1, 0), lin(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(pi1); err != nil {
		t.Fatal(err)
	}
	if pi1.Index(u.MustPoint(1, 1)) != 0 || pi1.Index(u.MustPoint(0, 0)) != 3 {
		t.Fatal("π1 order wrong")
	}
	if _, err := FromOrder(u, "bad", []uint64{0, 0, 1, 2}); err == nil {
		t.Fatal("duplicate visit accepted")
	}
	if _, err := FromOrder(u, "bad", []uint64{0, 1, 2, 7}); err == nil {
		t.Fatal("out-of-range visit accepted")
	}
	if _, err := FromOrder(u, "bad", []uint64{0, 1}); err == nil {
		t.Fatal("short order accepted")
	}
}

func TestHilbertMatchesKnown2D(t *testing.T) {
	// Second-order 2-d Hilbert curve: verify the full visiting order is a
	// single connected path covering the 4×4 grid, and that the d(=2)
	// quadrant structure holds: positions 0..3 in one quadrant, 4..7 in
	// another, etc.
	u := grid.MustNew(2, 2)
	h := NewHilbert(u)
	quadrantOf := func(p grid.Point) int {
		return int(p[0]/2) + 2*int(p[1]/2)
	}
	p := u.NewPoint()
	for q := 0; q < 4; q++ {
		h.Point(uint64(4*q), p)
		first := quadrantOf(p)
		for t2 := 1; t2 < 4; t2++ {
			h.Point(uint64(4*q+t2), p)
			if quadrantOf(p) != first {
				t.Fatalf("Hilbert positions %d..%d span quadrants", 4*q, 4*q+3)
			}
		}
	}
}

func TestRandomBijectionViaTable(t *testing.T) {
	// A random permutation wrapped in a Table is a valid SFC per the paper's
	// general definition.
	u := grid.MustNew(2, 2)
	rng := rand.New(rand.NewSource(5))
	perm := make([]uint64, u.N())
	for i, v := range rng.Perm(int(u.N())) {
		perm[i] = uint64(v)
	}
	tab := MustTable(u, "randtab", perm)
	if err := Validate(tab); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkZIndex3D(b *testing.B) {
	u := grid.MustNew(3, 10)
	z := NewZ(u)
	p := u.MustPoint(123, 456, 789)
	for i := 0; i < b.N; i++ {
		sink = z.Index(p)
	}
}

func BenchmarkHilbertIndex3D(b *testing.B) {
	u := grid.MustNew(3, 10)
	h := NewHilbert(u)
	p := u.MustPoint(123, 456, 789)
	for i := 0; i < b.N; i++ {
		sink = h.Index(p)
	}
}

func BenchmarkHilbertPoint3D(b *testing.B) {
	u := grid.MustNew(3, 10)
	h := NewHilbert(u)
	p := u.NewPoint()
	for i := 0; i < b.N; i++ {
		h.Point(uint64(i)&(u.N()-1), p)
	}
}

func BenchmarkSnakeIndex3D(b *testing.B) {
	u := grid.MustNew(3, 10)
	s := NewSnake(u)
	p := u.MustPoint(123, 456, 789)
	for i := 0; i < b.N; i++ {
		sink = s.Index(p)
	}
}

var sink uint64
