package curve

import (
	"math/bits"

	"repro/internal/grid"
)

// BitReversal is the bit-reversal permutation curve: the curve index is the
// row-major linear index with its d·k bits reversed (the van der Corput
// ordering of the cells).
//
// It is the deterministic antithesis of proximity preservation: moving one
// step along dimension 1 flips the linear index's lowest bit, which lands
// in the key's highest bit, so nearest neighbors sit ~n/2 apart on the
// curve. Unlike the seeded random curve it needs no table, so it provides a
// reproducible Θ(n)-stretch adversary at any size — useful in the Theorem 1
// tables as a structured curve that is maximally bad.
type BitReversal struct {
	u     *grid.Universe
	shift uint // 64 − d·k
}

// NewBitReversal returns the bit-reversal curve over u.
func NewBitReversal(u *grid.Universe) *BitReversal {
	return &BitReversal{u: u, shift: uint(64 - u.D()*u.K())}
}

// Universe implements Curve.
func (b *BitReversal) Universe() *grid.Universe { return b.u }

// Name implements Curve.
func (b *BitReversal) Name() string { return "bitrev" }

// Index implements Curve.
func (b *BitReversal) Index(p grid.Point) uint64 {
	if b.shift == 64 {
		return 0 // single-cell universe
	}
	return bits.Reverse64(b.u.Linear(p)) >> b.shift
}

// Point implements Curve.
func (b *BitReversal) Point(idx uint64, dst grid.Point) {
	if b.shift == 64 {
		b.u.FromLinear(0, dst)
		return
	}
	b.u.FromLinear(bits.Reverse64(idx<<b.shift), dst)
}

var _ Curve = (*BitReversal)(nil)
