package curve

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

// TestQuickRoundTripLargeUniverses property-tests Point∘Index = id on
// universes too large for full Validate enumeration, with quick-generated
// random cells.
func TestQuickRoundTripLargeUniverses(t *testing.T) {
	for _, dk := range [][2]int{{2, 15}, {3, 10}, {4, 7}, {6, 5}} {
		u := grid.MustNew(dk[0], dk[1])
		curves := []Curve{NewZ(u), NewSimple(u), NewSnake(u), NewGray(u), NewHilbert(u)}
		if dg, err := NewDiagonal(u); err == nil {
			curves = append(curves, dg)
		}
		for _, c := range curves {
			c := c
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				p := u.NewPoint()
				for i := range p {
					p[i] = uint32(rng.Int63n(int64(u.Side())))
				}
				idx := c.Index(p)
				if idx >= u.N() {
					return false
				}
				q := u.NewPoint()
				c.Point(idx, q)
				return q.Equal(p)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Errorf("%s on %v: %v", c.Name(), u, err)
			}
		}
	}
}

// TestQuickIndexInjective samples random distinct cell pairs and checks
// their indices differ — a sampled injectivity property at sizes where the
// bitmap check is too large.
func TestQuickIndexInjective(t *testing.T) {
	u := grid.MustNew(3, 12)
	curves := []Curve{NewZ(u), NewSimple(u), NewSnake(u), NewGray(u), NewHilbert(u)}
	for _, c := range curves {
		c := c
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			p := u.NewPoint()
			q := u.NewPoint()
			for i := range p {
				p[i] = uint32(rng.Int63n(int64(u.Side())))
				q[i] = uint32(rng.Int63n(int64(u.Side())))
			}
			if p.Equal(q) {
				return true
			}
			return c.Index(p) != c.Index(q)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestQuickHilbertUnitStepSampled verifies the unit-step property of the
// Hilbert curve at random positions of a universe too large to walk fully.
func TestQuickHilbertUnitStepSampled(t *testing.T) {
	u := grid.MustNew(3, 12)
	h := NewHilbert(u)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		idx := uint64(rng.Int63n(int64(u.N() - 1)))
		p := u.NewPoint()
		q := u.NewPoint()
		h.Point(idx, p)
		h.Point(idx+1, q)
		return grid.Manhattan(p, q) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickSnakeUnitStepSampled does the same for the snake curve.
func TestQuickSnakeUnitStepSampled(t *testing.T) {
	u := grid.MustNew(4, 9)
	s := NewSnake(u)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		idx := uint64(rng.Int63n(int64(u.N() - 1)))
		p := u.NewPoint()
		q := u.NewPoint()
		s.Point(idx, p)
		s.Point(idx+1, q)
		return grid.Manhattan(p, q) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickDiagonalSumOrderSampled checks, at scale, that the diagonal
// curve's index order respects the coordinate-sum order.
func TestQuickDiagonalSumOrderSampled(t *testing.T) {
	u := grid.MustNew(2, 11)
	dg := MustDiagonal(u)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := u.NewPoint()
		q := u.NewPoint()
		for i := range p {
			p[i] = uint32(rng.Int63n(int64(u.Side())))
			q[i] = uint32(rng.Int63n(int64(u.Side())))
		}
		sumP := int64(p[0]) + int64(p[1])
		sumQ := int64(q[0]) + int64(q[1])
		if sumP == sumQ {
			return true
		}
		if sumP > sumQ {
			p, q = q, p
		}
		return dg.Index(p) < dg.Index(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
