package curve

import (
	"fmt"
	"math/rand"

	"repro/internal/grid"
)

// MaxRandomCells bounds the universe size accepted by NewRandom: the curve
// materializes both the permutation and its inverse, costing 16 bytes per
// cell.
const MaxRandomCells = 1 << 26

// Random is a uniformly random bijection from cells to [0, n), drawn
// deterministically from a seed. It is the natural baseline for the paper's
// lower bound: the expected curve distance between *any* fixed pair of cells
// — nearest neighbors included — is (n+1)/3, so its average NN-stretch is
// Θ(n), vastly worse than the Θ(n^(1−1/d)) of the structured curves.
type Random struct {
	u    *grid.Universe
	perm []uint64 // perm[linear index] = curve index
	inv  []uint64 // inv[curve index] = linear index
	seed int64
}

// NewRandom returns a seeded random curve over u. Universes larger than
// MaxRandomCells cells are rejected.
func NewRandom(u *grid.Universe, seed int64) (*Random, error) {
	n := u.N()
	if n > MaxRandomCells {
		return nil, fmt.Errorf("curve: random curve over %d cells exceeds limit %d", n, MaxRandomCells)
	}
	perm := make([]uint64, n)
	for i := range perm {
		perm[i] = uint64(i)
	}
	rng := rand.New(rand.NewSource(seed))
	// Fisher–Yates with a 64-bit-capable index source.
	for i := int64(n) - 1; i > 0; i-- {
		j := rng.Int63n(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	inv := make([]uint64, n)
	for lin, idx := range perm {
		inv[idx] = uint64(lin)
	}
	return &Random{u: u, perm: perm, inv: inv, seed: seed}, nil
}

// Universe implements Curve.
func (r *Random) Universe() *grid.Universe { return r.u }

// Name implements Curve.
func (r *Random) Name() string { return "random" }

// Seed returns the seed the permutation was drawn from.
func (r *Random) Seed() int64 { return r.seed }

// Index implements Curve.
func (r *Random) Index(p grid.Point) uint64 { return r.perm[r.u.Linear(p)] }

// Point implements Curve.
func (r *Random) Point(idx uint64, dst grid.Point) { r.u.FromLinear(r.inv[idx], dst) }

var _ Curve = (*Random)(nil)
