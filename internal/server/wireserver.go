package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/wire"
)

// ServeWire accepts binary-protocol connections (internal/wire) on l until
// Drain. The wire listener is a second front door to the same service:
// every request passes the same admission control, deadline clamps, drain
// lifecycle, and metrics as the HTTP mux — only the encoding differs.
// Requests pipeline per connection: each request frame is handled in its
// own goroutine and responses interleave by request id.
func (s *Server) ServeWire(l net.Listener) error {
	s.wireMu.Lock()
	if s.wireListeners == nil {
		s.wireConns = make(map[net.Conn]struct{})
	}
	s.wireListeners = append(s.wireListeners, l)
	s.wireMu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.wireMu.Lock()
		s.wireConns[c] = struct{}{}
		s.wireMu.Unlock()
		s.wireConnWG.Add(1)
		go func() {
			defer s.wireConnWG.Done()
			s.serveWireConn(c)
			s.wireMu.Lock()
			delete(s.wireConns, c)
			s.wireMu.Unlock()
		}()
	}
}

// AdvertiseWire publishes addr through GET /wireinfo so JSON clients (and
// the cluster router) can discover the binary listener and upgrade.
func (s *Server) AdvertiseWire(addr string) { s.wireAdvert.Store(addr) }

// handleWireInfo answers GET /wireinfo: the advertised binary listener,
// or 404 when the daemon does not serve the binary protocol. Compress
// advertises per-frame deflate support; clients opt in per request. Write
// advertises the TPut/TDelete/TFlush frames, present only on durable
// daemons — a router seeing write:false (or an old daemon that omits the
// field entirely) must keep its writes on the HTTP endpoints. The frames
// share the reads' flags-byte contract: unknown request flag bits are
// hard-rejected as corrupt, never ignored.
func (s *Server) handleWireInfo(w http.ResponseWriter, r *http.Request) {
	addr, _ := s.wireAdvert.Load().(string)
	if addr == "" {
		s.writeError(w, http.StatusNotFound, "binary protocol not served", false)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(WireInfo{Addr: addr, Compress: true, Write: s.svc.DurableMode()})
}

// wireWriter serializes whole-frame writes to one connection, so frames
// from pipelined handler goroutines never interleave mid-frame. One
// conn.Write per frame: the frame is the flush unit.
type wireWriter struct {
	mu  sync.Mutex
	c   net.Conn
	buf []byte
}

func (w *wireWriter) write(f wire.Frame) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = wire.AppendFrame(w.buf[:0], f)
	_, err := w.c.Write(w.buf)
	return err
}

// segmentBytes bounds how much of a response one conn.Write carries. Small
// results — the common case — go out as one write (batches plus trailer,
// one syscall); large scans flush in segments, releasing the writer between
// them so pipelined responses and pings still interleave.
const segmentBytes = 1 << 18

// wireStreamEnc encodes one request's response frames into a private
// per-request buffer, flushing with a single locked conn.Write whenever a
// segment fills. The buffer never grows past one segment plus one frame, so
// per-request server-side buffering is bounded by segmentBytes plus the
// largest batch — not by the result size, however large the scan. ioFailed
// distinguishes a dead connection (give up silently; the read loop notices
// too) from an encoding failure (send TError).
type wireStreamEnc struct {
	w        *wireWriter
	id       uint64
	compress bool
	buf      []byte
	scratch  []byte // payload staging when compressing
	ioFailed bool
}

// addBatch encodes recs as TBatch frames of at most DefaultBatchRecords
// each. When the request negotiated compression, payloads of at least
// wire.MinCompressSize are deflated; the plain path encodes straight into
// the segment buffer with no intermediate copy.
func (e *wireStreamEnc) addBatch(recs []store.Record) error {
	for len(recs) > 0 {
		n := len(recs)
		if n > wire.DefaultBatchRecords {
			n = wire.DefaultBatchRecords
		}
		if e.compress {
			var err error
			e.scratch, err = wire.AppendBatchPayload(e.scratch[:0], recs[:n])
			if err != nil {
				return err
			}
			e.buf, err = wire.AppendCompressedFrame(e.buf, wire.Frame{Type: wire.TBatch, ID: e.id, Payload: e.scratch})
			if err != nil {
				return err
			}
		} else {
			start := len(e.buf)
			buf, err := wire.AppendBatchPayload(wire.BeginFrame(e.buf, wire.TBatch, e.id), recs[:n])
			if err != nil {
				return err
			}
			e.buf = wire.FinishFrame(buf, start)
		}
		recs = recs[n:]
		if len(e.buf) >= segmentBytes {
			if err := e.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flush writes the buffered segment under the connection's write lock.
func (e *wireStreamEnc) flush() error {
	if len(e.buf) == 0 {
		return nil
	}
	e.w.mu.Lock()
	_, err := e.w.c.Write(e.buf)
	e.w.mu.Unlock()
	e.buf = e.buf[:0]
	if err != nil {
		e.ioFailed = true
	}
	return err
}

// finish appends the TTrailer — the stream's commit point — and flushes
// whatever remains, so small responses go out as one write.
func (e *wireStreamEnc) finish(tr wire.Trailer) error {
	start := len(e.buf)
	buf, err := wire.AppendTrailerPayload(wire.BeginFrame(e.buf, wire.TTrailer, e.id), tr)
	if err != nil {
		return err
	}
	e.buf = wire.FinishFrame(buf, start)
	return e.flush()
}

// writeError sends a TError frame; hint < 0 means no retry-after.
func (w *wireWriter) writeError(id uint64, code uint8, hint int64, msg string) error {
	p, err := wire.AppendErrorPayload(nil, wire.ErrorFrame{Code: code, RetryAfterSec: hint, Msg: msg})
	if err != nil {
		return err
	}
	return w.write(wire.Frame{Type: wire.TError, ID: id, Payload: p})
}

// serveWireConn reads request frames until the connection dies or sends a
// malformed frame (framing is terminal: a corrupt stream cannot be
// re-synchronized). Handlers run concurrently; the connection closes only
// after every handler has finished writing.
func (s *Server) serveWireConn(c net.Conn) {
	ctx, cancel := context.WithCancel(context.Background())
	w := &wireWriter{c: c}
	var handlers sync.WaitGroup
	br := bufio.NewReaderSize(c, 1<<16)
	for {
		f, err := wire.ReadFrame(br)
		if err != nil {
			break
		}
		switch f.Type {
		case wire.TPing:
			s.wireReqWG.Add(1)
			handlers.Add(1)
			go func(id uint64) {
				defer s.wireReqWG.Done()
				defer handlers.Done()
				w.write(wire.Frame{
					Type:    wire.TPong,
					ID:      id,
					Payload: wire.AppendPongPayload(nil, wire.Pong{Ready: !s.draining.Load()}),
				})
			}(f.ID)
		case wire.TQuery, wire.TScan:
			s.reqTotal.Inc()
			if s.draining.Load() {
				s.reqDraining.Inc()
				w.writeError(f.ID, wire.CodeUnavailable, int64(s.retryAfterSec), "draining")
				continue
			}
			s.wireReqWG.Add(1)
			handlers.Add(1)
			go func(f wire.Frame) {
				defer s.wireReqWG.Done()
				defer handlers.Done()
				s.handleWireRequest(ctx, w, f)
			}(f)
		case wire.TPut, wire.TDelete, wire.TFlush:
			s.reqTotal.Inc()
			if s.draining.Load() {
				s.reqDraining.Inc()
				w.writeError(f.ID, wire.CodeUnavailable, int64(s.retryAfterSec), "draining")
				continue
			}
			s.wireReqWG.Add(1)
			handlers.Add(1)
			go func(f wire.Frame) {
				defer s.wireReqWG.Done()
				defer handlers.Done()
				s.handleWireWrite(ctx, w, f)
			}(f)
		default:
			// A response-direction or unknown frame from a client is a
			// protocol violation; drop the connection.
			cancel()
			handlers.Wait()
			c.Close()
			return
		}
	}
	cancel()
	handlers.Wait()
	c.Close()
}

// handleWireRequest runs one TQuery/TScan through admission, the service's
// streaming pipeline, and the incremental response encoding: TBatch frames
// go out as the shard merge produces them, so the client's first records
// arrive while later curve intervals are still being scanned, and the
// trailer commits the degraded tiling only once every shard has finished.
// Failure mapping mirrors the HTTP handlers': shed → CodeOverloaded
// (+hint), queued past deadline → CodeDeadline, drain → CodeUnavailable,
// malformed → CodeBadRequest. A failure after batches have flushed is
// reported as a TError frame — the protocol's promise that a missing
// trailer is always accompanied by a reason or a dead connection.
func (s *Server) handleWireRequest(connCtx context.Context, w *wireWriter, f wire.Frame) {
	var timeout time.Duration
	var compress bool
	open := func(ctx context.Context) (*service.Stream, error) { return nil, nil }
	switch f.Type {
	case wire.TQuery:
		req, err := wire.DecodeQueryRequest(f.Payload)
		if err != nil {
			s.reqBad.Inc()
			w.writeError(f.ID, wire.CodeBadRequest, -1, err.Error())
			return
		}
		box, err := query.NewBox(s.svc.Curve().Universe(), req.Lo, req.Hi)
		if err != nil {
			s.reqBad.Inc()
			w.writeError(f.ID, wire.CodeBadRequest, -1, err.Error())
			return
		}
		timeout, compress = req.Timeout, req.Compress
		open = func(ctx context.Context) (*service.Stream, error) { return s.svc.RangeStream(ctx, box) }
	case wire.TScan:
		req, err := wire.DecodeScanRequest(f.Payload)
		if err != nil {
			s.reqBad.Inc()
			w.writeError(f.ID, wire.CodeBadRequest, -1, err.Error())
			return
		}
		timeout, compress = req.Timeout, req.Compress
		open = func(ctx context.Context) (*service.Stream, error) { return s.svc.ScanStream(ctx, req.Ivs) }
	}

	ctx := connCtx
	if timeout = s.clampTimeout(timeout); timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	waited, err := s.lim.acquire(ctx)
	s.queueWaitH.Observe(waited.Microseconds())
	if err != nil {
		switch {
		case errors.Is(err, errShed):
			s.reqShed.Inc()
			w.writeError(f.ID, wire.CodeOverloaded, int64(s.retryAfterSec), "overloaded: inflight limit reached within the queue-wait budget")
		case errors.Is(err, context.DeadlineExceeded):
			s.reqDeadline.Inc()
			w.writeError(f.ID, wire.CodeDeadline, -1, "deadline exceeded while queued for admission")
		default: // connection went away while queued; nobody is listening
			s.reqCanceled.Inc()
		}
		return
	}
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.lim.release()
	}()

	start := time.Now()
	st, err := open(ctx)
	if err != nil {
		s.failWireRequest(w, f, err)
		return
	}
	defer st.Close()
	enc := &wireStreamEnc{w: w, id: f.ID, compress: compress}
	for {
		recs, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			s.failWireRequest(w, f, err)
			return
		}
		if err := enc.addBatch(recs); err != nil {
			if !enc.ioFailed {
				s.reqErrors.Inc()
				w.writeError(f.ID, wire.CodeInternal, -1, err.Error())
				return
			}
			// The connection broke mid-stream; the read loop notices too.
			s.reqErrors.Inc()
			return
		}
	}
	res := st.Trailer()
	elapsed := time.Since(start)
	tr := wire.Trailer{
		Unavailable:   res.Unavailable,
		ShardsQueried: res.ShardsQueried,
		PagesRead:     res.PagesRead,
		ElapsedUS:     elapsed.Microseconds(),
	}
	if err := enc.finish(tr); err != nil {
		if !enc.ioFailed {
			w.writeError(f.ID, wire.CodeInternal, -1, err.Error())
		}
		s.reqErrors.Inc()
		return
	}
	s.latency.Observe(elapsed.Microseconds())
	s.reqOK.Inc()
}

// handleWireWrite runs one TPut/TDelete/TFlush through the same admission
// control and deadline clamps as reads, applies it through the service's
// durable write path, and answers with a TWriteAck — Acked=1, Required=1,
// empty replica list: the standalone daemon is its own single replica, and
// routers build the fan-out view themselves. Failure mapping mirrors
// writeWriteError's HTTP statuses: read-only → CodeReadOnly (403),
// drain/close → CodeUnavailable (503), deadline → CodeDeadline (504),
// vanished client → silence, anything else → CodeBadRequest (400).
func (s *Server) handleWireWrite(connCtx context.Context, w *wireWriter, f wire.Frame) {
	var timeout time.Duration
	var apply func(ctx context.Context) error
	switch f.Type {
	case wire.TPut, wire.TDelete:
		req, err := wire.DecodeWriteRequest(f.Payload)
		if err != nil {
			s.reqBad.Inc()
			w.writeError(f.ID, wire.CodeBadRequest, -1, err.Error())
			return
		}
		timeout = req.Timeout
		rec := store.Record{Point: req.Point, Payload: req.Payload}
		if f.Type == wire.TPut {
			apply = func(ctx context.Context) error { return s.svc.Put(ctx, rec) }
		} else {
			apply = func(ctx context.Context) error { return s.svc.Delete(ctx, rec) }
		}
	case wire.TFlush:
		req, err := wire.DecodeFlushRequest(f.Payload)
		if err != nil {
			s.reqBad.Inc()
			w.writeError(f.ID, wire.CodeBadRequest, -1, err.Error())
			return
		}
		timeout = req.Timeout
		apply = func(ctx context.Context) error { return s.svc.Flush(ctx) }
	}

	ctx := connCtx
	if timeout = s.clampTimeout(timeout); timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	waited, err := s.lim.acquire(ctx)
	s.queueWaitH.Observe(waited.Microseconds())
	if err != nil {
		switch {
		case errors.Is(err, errShed):
			s.reqShed.Inc()
			w.writeError(f.ID, wire.CodeOverloaded, int64(s.retryAfterSec), "overloaded: inflight limit reached within the queue-wait budget")
		case errors.Is(err, context.DeadlineExceeded):
			s.reqDeadline.Inc()
			w.writeError(f.ID, wire.CodeDeadline, -1, "deadline exceeded while queued for admission")
		default: // connection went away while queued; nobody is listening
			s.reqCanceled.Inc()
		}
		return
	}
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.lim.release()
	}()

	start := time.Now()
	if err := apply(ctx); err != nil {
		s.failWireWrite(w, f.ID, err)
		return
	}
	elapsed := time.Since(start)
	p, err := wire.AppendWriteAckPayload(nil, wire.WriteAck{
		Acked:     1,
		Required:  1,
		ElapsedUS: elapsed.Microseconds(),
	})
	if err != nil {
		s.reqErrors.Inc()
		w.writeError(f.ID, wire.CodeInternal, -1, err.Error())
		return
	}
	if err := w.write(wire.Frame{Type: wire.TWriteAck, ID: f.ID, Payload: p}); err != nil {
		s.reqErrors.Inc()
		return
	}
	s.latency.Observe(elapsed.Microseconds())
	s.reqOK.Inc()
}

// failWireWrite maps a write failure to its TError frame, the binary twin
// of writeWriteError.
func (s *Server) failWireWrite(w *wireWriter, id uint64, err error) {
	switch {
	case errors.Is(err, service.ErrReadOnly):
		s.reqBad.Inc()
		w.writeError(id, wire.CodeReadOnly, -1, "read-only: the daemon was started without -data")
	case errors.Is(err, service.ErrShuttingDown), errors.Is(err, store.ErrClosed):
		s.reqDraining.Inc()
		w.writeError(id, wire.CodeUnavailable, int64(s.retryAfterSec), "shutting down")
	case errors.Is(err, context.DeadlineExceeded):
		s.reqDeadline.Inc()
		w.writeError(id, wire.CodeDeadline, -1, "deadline exceeded")
	case errors.Is(err, context.Canceled):
		s.reqCanceled.Inc() // connection closed; response goes nowhere
	default:
		s.reqErrors.Inc()
		w.writeError(id, wire.CodeBadRequest, -1, err.Error())
	}
}

// failWireRequest maps a stream-open or mid-stream failure to its TError
// frame (or silence for a vanished client), keeping the binary protocol's
// failure vocabulary identical to the HTTP handlers'.
func (s *Server) failWireRequest(w *wireWriter, f wire.Frame, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.reqDeadline.Inc()
		w.writeError(f.ID, wire.CodeDeadline, -1, "deadline exceeded mid-scan")
	case errors.Is(err, context.Canceled):
		s.reqCanceled.Inc() // connection closed; response goes nowhere
	case errors.Is(err, service.ErrShuttingDown):
		s.reqDraining.Inc()
		w.writeError(f.ID, wire.CodeUnavailable, int64(s.retryAfterSec), "shutting down")
	case f.Type == wire.TScan:
		// Scan validation failures (unsorted, out of range) are the
		// client's fault, mirroring HTTP 400.
		s.reqBad.Inc()
		w.writeError(f.ID, wire.CodeBadRequest, -1, err.Error())
	default:
		s.reqErrors.Inc()
		w.writeError(f.ID, wire.CodeInternal, -1, err.Error())
	}
}
