package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/wire"
)

// ServeWire accepts binary-protocol connections (internal/wire) on l until
// Drain. The wire listener is a second front door to the same service:
// every request passes the same admission control, deadline clamps, drain
// lifecycle, and metrics as the HTTP mux — only the encoding differs.
// Requests pipeline per connection: each request frame is handled in its
// own goroutine and responses interleave by request id.
func (s *Server) ServeWire(l net.Listener) error {
	s.wireMu.Lock()
	if s.wireListeners == nil {
		s.wireConns = make(map[net.Conn]struct{})
	}
	s.wireListeners = append(s.wireListeners, l)
	s.wireMu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.wireMu.Lock()
		s.wireConns[c] = struct{}{}
		s.wireMu.Unlock()
		s.wireConnWG.Add(1)
		go func() {
			defer s.wireConnWG.Done()
			s.serveWireConn(c)
			s.wireMu.Lock()
			delete(s.wireConns, c)
			s.wireMu.Unlock()
		}()
	}
}

// AdvertiseWire publishes addr through GET /wireinfo so JSON clients (and
// the cluster router) can discover the binary listener and upgrade.
func (s *Server) AdvertiseWire(addr string) { s.wireAdvert.Store(addr) }

// handleWireInfo answers GET /wireinfo: the advertised binary listener,
// or 404 when the daemon does not serve the binary protocol.
func (s *Server) handleWireInfo(w http.ResponseWriter, r *http.Request) {
	addr, _ := s.wireAdvert.Load().(string)
	if addr == "" {
		s.writeError(w, http.StatusNotFound, "binary protocol not served", false)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(WireInfo{Addr: addr})
}

// wireWriter serializes whole-frame writes to one connection, so frames
// from pipelined handler goroutines never interleave mid-frame. One
// conn.Write per frame: the frame is the flush unit.
type wireWriter struct {
	mu  sync.Mutex
	c   net.Conn
	buf []byte
}

func (w *wireWriter) write(f wire.Frame) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = wire.AppendFrame(w.buf[:0], f)
	_, err := w.c.Write(w.buf)
	return err
}

// segmentBytes bounds how much of a response one conn.Write carries. Small
// results — the common case — go out as one write (batches plus trailer,
// one syscall); large scans flush in segments, releasing the writer between
// them so pipelined responses and pings still interleave.
const segmentBytes = 1 << 18

// writeSegment encodes TBatch frames from *recs directly into the shared
// write buffer — no intermediate payload allocation, capacity retained
// across calls — until the segment bound, appends the TTrailer once the
// records run out, and writes the segment with a single conn.Write. It
// advances *recs past what it consumed and reports done when the trailer
// went out. An encoding error (malformed records) is reported distinctly
// from a write error so the caller can send a TError for the former.
func (w *wireWriter) writeSegment(id uint64, recs *[]store.Record, tr wire.Trailer) (done bool, encErr, writeErr error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = w.buf[:0]
	for len(*recs) > 0 && len(w.buf) < segmentBytes {
		n := len(*recs)
		if n > wire.DefaultBatchRecords {
			n = wire.DefaultBatchRecords
		}
		start := len(w.buf)
		buf, err := wire.AppendBatchPayload(wire.BeginFrame(w.buf, wire.TBatch, id), (*recs)[:n])
		if err != nil {
			return false, err, nil
		}
		w.buf = wire.FinishFrame(buf, start)
		*recs = (*recs)[n:]
	}
	if len(*recs) == 0 {
		start := len(w.buf)
		buf, err := wire.AppendTrailerPayload(wire.BeginFrame(w.buf, wire.TTrailer, id), tr)
		if err != nil {
			return false, err, nil
		}
		w.buf = wire.FinishFrame(buf, start)
		done = true
	}
	_, werr := w.c.Write(w.buf)
	return done, nil, werr
}

// writeError sends a TError frame; hint < 0 means no retry-after.
func (w *wireWriter) writeError(id uint64, code uint8, hint int64, msg string) error {
	p, err := wire.AppendErrorPayload(nil, wire.ErrorFrame{Code: code, RetryAfterSec: hint, Msg: msg})
	if err != nil {
		return err
	}
	return w.write(wire.Frame{Type: wire.TError, ID: id, Payload: p})
}

// serveWireConn reads request frames until the connection dies or sends a
// malformed frame (framing is terminal: a corrupt stream cannot be
// re-synchronized). Handlers run concurrently; the connection closes only
// after every handler has finished writing.
func (s *Server) serveWireConn(c net.Conn) {
	ctx, cancel := context.WithCancel(context.Background())
	w := &wireWriter{c: c}
	var handlers sync.WaitGroup
	br := bufio.NewReaderSize(c, 1<<16)
	for {
		f, err := wire.ReadFrame(br)
		if err != nil {
			break
		}
		switch f.Type {
		case wire.TPing:
			s.wireReqWG.Add(1)
			handlers.Add(1)
			go func(id uint64) {
				defer s.wireReqWG.Done()
				defer handlers.Done()
				w.write(wire.Frame{
					Type:    wire.TPong,
					ID:      id,
					Payload: wire.AppendPongPayload(nil, wire.Pong{Ready: !s.draining.Load()}),
				})
			}(f.ID)
		case wire.TQuery, wire.TScan:
			s.reqTotal.Inc()
			if s.draining.Load() {
				s.reqDraining.Inc()
				w.writeError(f.ID, wire.CodeUnavailable, int64(s.retryAfterSec), "draining")
				continue
			}
			s.wireReqWG.Add(1)
			handlers.Add(1)
			go func(f wire.Frame) {
				defer s.wireReqWG.Done()
				defer handlers.Done()
				s.handleWireRequest(ctx, w, f)
			}(f)
		default:
			// A response-direction or unknown frame from a client is a
			// protocol violation; drop the connection.
			cancel()
			handlers.Wait()
			c.Close()
			return
		}
	}
	cancel()
	handlers.Wait()
	c.Close()
}

// handleWireRequest runs one TQuery/TScan through admission, the service,
// and the streaming response encoding. Failure mapping mirrors the HTTP
// handlers': shed → CodeOverloaded (+hint), queued past deadline →
// CodeDeadline, drain → CodeUnavailable, malformed → CodeBadRequest.
func (s *Server) handleWireRequest(connCtx context.Context, w *wireWriter, f wire.Frame) {
	var timeout time.Duration
	run := func(ctx context.Context) (service.Result, error) { return service.Result{}, nil }
	switch f.Type {
	case wire.TQuery:
		req, err := wire.DecodeQueryRequest(f.Payload)
		if err != nil {
			s.reqBad.Inc()
			w.writeError(f.ID, wire.CodeBadRequest, -1, err.Error())
			return
		}
		box, err := query.NewBox(s.svc.Curve().Universe(), req.Lo, req.Hi)
		if err != nil {
			s.reqBad.Inc()
			w.writeError(f.ID, wire.CodeBadRequest, -1, err.Error())
			return
		}
		timeout = req.Timeout
		run = func(ctx context.Context) (service.Result, error) { return s.svc.Range(ctx, box) }
	case wire.TScan:
		req, err := wire.DecodeScanRequest(f.Payload)
		if err != nil {
			s.reqBad.Inc()
			w.writeError(f.ID, wire.CodeBadRequest, -1, err.Error())
			return
		}
		timeout = req.Timeout
		run = func(ctx context.Context) (service.Result, error) { return s.svc.Scan(ctx, req.Ivs) }
	}

	ctx := connCtx
	if timeout = s.clampTimeout(timeout); timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	waited, err := s.lim.acquire(ctx)
	s.queueWaitH.Observe(waited.Microseconds())
	if err != nil {
		switch {
		case errors.Is(err, errShed):
			s.reqShed.Inc()
			w.writeError(f.ID, wire.CodeOverloaded, int64(s.retryAfterSec), "overloaded: inflight limit reached within the queue-wait budget")
		case errors.Is(err, context.DeadlineExceeded):
			s.reqDeadline.Inc()
			w.writeError(f.ID, wire.CodeDeadline, -1, "deadline exceeded while queued for admission")
		default: // connection went away while queued; nobody is listening
			s.reqCanceled.Inc()
		}
		return
	}
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.lim.release()
	}()

	start := time.Now()
	res, err := run(ctx)
	elapsed := time.Since(start)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.reqDeadline.Inc()
			w.writeError(f.ID, wire.CodeDeadline, -1, "deadline exceeded mid-scan")
		case errors.Is(err, context.Canceled):
			s.reqCanceled.Inc() // connection closed; response goes nowhere
		case errors.Is(err, service.ErrShuttingDown):
			s.reqDraining.Inc()
			w.writeError(f.ID, wire.CodeUnavailable, int64(s.retryAfterSec), "shutting down")
		case f.Type == wire.TScan:
			// Scan validation failures (unsorted, out of range) are the
			// client's fault, mirroring HTTP 400.
			s.reqBad.Inc()
			w.writeError(f.ID, wire.CodeBadRequest, -1, err.Error())
		default:
			s.reqErrors.Inc()
			w.writeError(f.ID, wire.CodeInternal, -1, err.Error())
		}
		return
	}
	s.latency.Observe(elapsed.Microseconds())
	if err := s.streamWireResult(w, f.ID, res, elapsed); err != nil {
		// The connection broke mid-stream; the read loop notices too.
		s.reqErrors.Inc()
		return
	}
	s.reqOK.Inc()
}

// streamWireResult writes a result as chunked TBatch frames in curve order
// followed by the TTrailer. The trailer is the commit point — a client
// that never sees it knows the body is incomplete, whatever arrived.
func (s *Server) streamWireResult(w *wireWriter, id uint64, res service.Result, elapsed time.Duration) error {
	tr := wire.Trailer{
		Unavailable:   res.Unavailable,
		ShardsQueried: res.ShardsQueried,
		PagesRead:     res.PagesRead,
		ElapsedUS:     elapsed.Microseconds(),
	}
	recs := res.Records
	for {
		done, encErr, writeErr := w.writeSegment(id, &recs, tr)
		if encErr != nil {
			w.writeError(id, wire.CodeInternal, -1, encErr.Error())
			return encErr
		}
		if writeErr != nil {
			return writeErr
		}
		if done {
			return nil
		}
	}
}
