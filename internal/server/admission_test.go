package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLimiterNeverExceedsBound is the -race stress on the inflight
// limiter: many goroutines hammering acquire/release must never observe
// more than max concurrent holders, and every acquire must resolve to
// exactly one of {held, shed, ctx}.
func TestLimiterNeverExceedsBound(t *testing.T) {
	const (
		maxInflight = 8
		goroutines  = 64
		iterations  = 200
	)
	l := newLimiter(maxInflight, 2*time.Millisecond)
	var cur, high, held, shedCount atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				_, err := l.acquire(ctx)
				if err != nil {
					if !errors.Is(err, errShed) {
						t.Errorf("acquire: %v", err)
						return
					}
					shedCount.Add(1)
					continue
				}
				held.Add(1)
				n := cur.Add(1)
				for {
					h := high.Load()
					if n <= h || high.CompareAndSwap(h, n) {
						break
					}
				}
				if n > maxInflight {
					t.Errorf("inflight %d > bound %d", n, maxInflight)
				}
				cur.Add(-1)
				l.release()
			}
		}()
	}
	wg.Wait()
	if got := high.Load(); got > maxInflight {
		t.Fatalf("high-water inflight %d > bound %d", got, maxInflight)
	}
	if l.inflight() != 0 {
		t.Fatalf("%d slots leaked", l.inflight())
	}
	if held.Load()+shedCount.Load() != goroutines*iterations {
		t.Fatalf("held %d + shed %d != %d attempts", held.Load(), shedCount.Load(), goroutines*iterations)
	}
	t.Logf("held=%d shed=%d high-water=%d", held.Load(), shedCount.Load(), high.Load())
}

// TestLimiterShedsWhenSaturated: with every slot held, acquire either
// sheds within roughly the queue-wait budget or returns the context's
// error when the caller's deadline is shorter.
func TestLimiterShedsWhenSaturated(t *testing.T) {
	l := newLimiter(1, 10*time.Millisecond)
	if _, err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := l.acquire(context.Background())
	if !errors.Is(err, errShed) {
		t.Fatalf("err = %v, want errShed", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("shed took %v, budget was 10ms", waited)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	lslow := newLimiter(1, time.Hour)
	if _, err := lslow.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := lslow.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Zero budget sheds immediately instead of arming a timer.
	lzero := newLimiter(1, 0)
	if _, err := lzero.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := lzero.acquire(context.Background()); !errors.Is(err, errShed) {
		t.Fatalf("err = %v, want errShed with zero budget", err)
	}
}
