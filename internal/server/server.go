// Package server is the network boundary of the repository: an HTTP/JSON
// daemon wrapping the sharded query service (internal/service) so that the
// SFC-linearized store can be queried over a socket.
//
// The paper's thesis is that a space filling curve makes proximate
// multidimensional data cheap to serve from a one-dimensional index; this
// package is where that claim becomes operational. The serving concerns
// live here, not in the service layer:
//
//   - Deadline propagation. A request's context — canceled when the client
//     disconnects, expired when its ?timeout elapses — flows into the
//     context-first scan path, so an abandoned query stops within one page
//     fetch.
//   - Admission control. A bounded inflight semaphore plus a queue-wait
//     budget shed excess load with 429 + Retry-After instead of letting
//     latency collapse for everyone; shed, inflight, queueing and latency
//     are recorded in the same metrics registry the service reports into.
//   - Graceful drain. Drain stops accepting work, finishes inflight
//     requests up to a deadline, then closes the service — SIGTERM during
//     traffic loses nothing.
//   - Observability. /metrics (text and JSON), /healthz, /readyz, and
//     optionally the net/http/pprof handlers via internal/profiling.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/profiling"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/store"
	wiretext "repro/internal/wire/text"
)

// Config defaults.
const (
	// DefaultQueueWait is the default time a request may wait for an
	// inflight slot before being shed.
	DefaultQueueWait = 100 * time.Millisecond
	// DefaultMaxTimeout caps the per-request ?timeout parameter so a client
	// cannot pin a slot arbitrarily long.
	DefaultMaxTimeout = 30 * time.Second
)

// Server wraps a service.Service behind an HTTP mux. Build one with New,
// expose Handler to a test server, or Serve a listener directly; Drain
// performs the graceful shutdown sequence.
type Server struct {
	svc *service.Service
	reg *metrics.Registry
	lim *limiter

	defaultTimeout time.Duration
	maxTimeout     time.Duration
	retryAfterSec  int

	draining atomic.Bool
	mux      *http.ServeMux
	http     *http.Server

	// Binary wire listener state (wireserver.go). The HTTP and wire front
	// doors share the limiter, drain flag, and metrics above.
	wireMu        sync.Mutex
	wireListeners []net.Listener
	wireConns     map[net.Conn]struct{}
	wireConnWG    sync.WaitGroup // connection read loops
	wireReqWG     sync.WaitGroup // in-flight wire requests
	wireAdvert    atomic.Value   // string: addr published via /wireinfo

	reqTotal    *metrics.Counter
	reqOK       *metrics.Counter
	reqShed     *metrics.Counter
	reqBad      *metrics.Counter
	reqDeadline *metrics.Counter
	reqCanceled *metrics.Counter
	reqErrors   *metrics.Counter
	reqDraining *metrics.Counter
	inflight    *metrics.Counter
	latency     *metrics.Histogram
	queueWaitH  *metrics.Histogram
}

// buildConfig is the resolved New configuration.
type buildConfig struct {
	maxInflight    int
	queueWait      time.Duration
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	pprof          bool
}

// Option configures New.
type Option interface {
	apply(*buildConfig) error
}

type optionFunc func(*buildConfig) error

func (f optionFunc) apply(b *buildConfig) error { return f(b) }

// WithMaxInflight bounds the number of queries executing concurrently
// (default 4×GOMAXPROCS). Requests beyond the bound queue up to the
// queue-wait budget, then shed with 429.
func WithMaxInflight(n int) Option {
	return optionFunc(func(b *buildConfig) error {
		if n < 1 {
			return fmt.Errorf("server: max inflight %d < 1", n)
		}
		b.maxInflight = n
		return nil
	})
}

// WithQueueWait sets the admission queue-wait budget (default
// DefaultQueueWait; 0 sheds immediately when saturated).
func WithQueueWait(d time.Duration) Option {
	return optionFunc(func(b *buildConfig) error {
		if d < 0 {
			return fmt.Errorf("server: negative queue wait %v", d)
		}
		b.queueWait = d
		return nil
	})
}

// WithDefaultTimeout sets the deadline applied to requests that carry no
// ?timeout parameter (default: none — only client disconnect cancels).
func WithDefaultTimeout(d time.Duration) Option {
	return optionFunc(func(b *buildConfig) error {
		if d < 0 {
			return fmt.Errorf("server: negative default timeout %v", d)
		}
		b.defaultTimeout = d
		return nil
	})
}

// WithMaxTimeout caps the per-request ?timeout parameter (default
// DefaultMaxTimeout).
func WithMaxTimeout(d time.Duration) Option {
	return optionFunc(func(b *buildConfig) error {
		if d <= 0 {
			return fmt.Errorf("server: max timeout %v <= 0", d)
		}
		b.maxTimeout = d
		return nil
	})
}

// WithPprof attaches the net/http/pprof handlers under /debug/pprof/.
func WithPprof() Option {
	return optionFunc(func(b *buildConfig) error {
		b.pprof = true
		return nil
	})
}

// New builds a Server over svc. The server records into svc's metrics
// registry, so /metrics exposes the service- and server-side series
// together.
func New(svc *service.Service, opts ...Option) (*Server, error) {
	cfg := buildConfig{
		maxInflight: 4 * runtime.GOMAXPROCS(0),
		queueWait:   DefaultQueueWait,
		maxTimeout:  DefaultMaxTimeout,
	}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt.apply(&cfg); err != nil {
			return nil, err
		}
	}
	reg := svc.Metrics()
	s := &Server{
		svc:            svc,
		reg:            reg,
		lim:            newLimiter(cfg.maxInflight, cfg.queueWait),
		defaultTimeout: cfg.defaultTimeout,
		maxTimeout:     cfg.maxTimeout,
		retryAfterSec:  retryAfterSeconds(cfg.queueWait),
		mux:            http.NewServeMux(),

		reqTotal:    reg.Counter("server.requests"),
		reqOK:       reg.Counter("server.ok"),
		reqShed:     reg.Counter("server.shed"),
		reqBad:      reg.Counter("server.bad_request"),
		reqDeadline: reg.Counter("server.deadline_exceeded"),
		reqCanceled: reg.Counter("server.canceled"),
		reqErrors:   reg.Counter("server.errors"),
		reqDraining: reg.Counter("server.draining_rejected"),
		inflight:    reg.Counter("server.inflight"),
		latency:     reg.Histogram("server.latency_us"),
		queueWaitH:  reg.Histogram("server.queue_wait_us"),
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/scan", s.handleScan)
	s.mux.HandleFunc("/put", s.handleWrite((*service.Service).Put))
	s.mux.HandleFunc("/delete", s.handleWrite((*service.Service).Delete))
	s.mux.HandleFunc("/flush", s.handleFlush)
	s.mux.HandleFunc("/digest", s.handleDigest)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/wireinfo", s.handleWireInfo)
	if cfg.pprof {
		profiling.AttachPprof(s.mux)
	}
	s.http = &http.Server{Handler: s.mux}
	return s, nil
}

// retryAfterSeconds renders the queue-wait budget as a whole-second
// Retry-After hint (minimum 1 — the header has no sub-second form).
func retryAfterSeconds(queueWait time.Duration) int {
	sec := int((queueWait + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// Handler returns the server's mux — the hook httptest-based tests serve.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Drain (or Close) is called. A clean
// drain returns nil.
func (s *Server) Serve(l net.Listener) error {
	err := s.http.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Drain performs the graceful shutdown sequence across both front doors:
// flip /readyz to 503 and reject new queries (load balancers steer away),
// stop accepting HTTP and wire connections, wait for inflight requests up
// to ctx's deadline, then close the underlying service. If ctx expires
// first, remaining connections are force-closed and the context's error is
// returned — inflight queries at that point die with the socket.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.wireMu.Lock()
	for _, l := range s.wireListeners {
		l.Close()
	}
	s.wireMu.Unlock()
	err := s.http.Shutdown(ctx)
	if err != nil {
		// Deadline hit with requests still inflight: force the sockets.
		s.http.Close()
	}
	// Wait out in-flight wire requests; their trailers are the commit
	// point pipelined clients depend on.
	done := make(chan struct{})
	go func() {
		s.wireReqWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	// Idle (or stuck, if ctx expired) wire connections block in ReadFrame;
	// closing the sockets releases their read loops.
	s.wireMu.Lock()
	for c := range s.wireConns {
		c.Close()
	}
	s.wireMu.Unlock()
	s.wireConnWG.Wait()
	if cerr := s.svc.Close(); err == nil {
		err = cerr
	}
	return err
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// handleQuery answers GET /query?lo=x1,…,xd&hi=y1,…,yd[&timeout=250ms].
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Inc()
	if s.draining.Load() {
		s.reqDraining.Inc()
		s.writeError(w, http.StatusServiceUnavailable, "draining", true)
		return
	}
	box, timeout, err := s.parseQuery(r)
	if err != nil {
		s.reqBad.Inc()
		s.writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	waited, err := s.lim.acquire(ctx)
	s.queueWaitH.Observe(waited.Microseconds())
	if err != nil {
		switch {
		case errors.Is(err, errShed):
			s.reqShed.Inc()
			s.writeError(w, http.StatusTooManyRequests, "overloaded: inflight limit reached within the queue-wait budget", true)
		case errors.Is(err, context.DeadlineExceeded):
			s.reqDeadline.Inc()
			s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded while queued for admission", false)
		default: // client went away while queued; nobody is listening
			s.reqCanceled.Inc()
		}
		return
	}
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.lim.release()
	}()

	start := time.Now()
	res, err := s.svc.Range(ctx, box)
	elapsed := time.Since(start)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.reqDeadline.Inc()
			s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded mid-scan", false)
		case errors.Is(err, context.Canceled):
			s.reqCanceled.Inc() // client disconnected; response goes nowhere
		case errors.Is(err, service.ErrShuttingDown):
			s.reqDraining.Inc()
			s.writeError(w, http.StatusServiceUnavailable, "shutting down", true)
		default:
			s.reqErrors.Inc()
			s.writeError(w, http.StatusInternalServerError, err.Error(), false)
		}
		return
	}
	s.latency.Observe(elapsed.Microseconds())
	s.reqOK.Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(toResponse(res, elapsed.Microseconds()))
}

// MaxScanIntervals bounds the interval count a single /scan request may
// carry, so a malformed router cannot make a node sort an unbounded list.
//
// Deprecated: use wiretext.MaxScanIntervals (internal/wire/text).
const MaxScanIntervals = wiretext.MaxScanIntervals

// handleScan answers GET /scan?ivs=lo-hi,lo-hi,…[&timeout=250ms]: a raw
// curve-interval scan, the endpoint the cluster router fans box queries out
// through. Intervals must be non-empty, in-range, sorted, and disjoint —
// exactly the clipped decomposition the router produces — and the response
// shape is identical to /query, dark intervals included.
func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Inc()
	if s.draining.Load() {
		s.reqDraining.Inc()
		s.writeError(w, http.StatusServiceUnavailable, "draining", true)
		return
	}
	q := r.URL.Query()
	ivs, err := ParseIntervals(q.Get("ivs"))
	if err != nil {
		s.reqBad.Inc()
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("ivs: %v", err), false)
		return
	}
	timeout, err := s.parseTimeout(q.Get("timeout"))
	if err != nil {
		s.reqBad.Inc()
		s.writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	waited, err := s.lim.acquire(ctx)
	s.queueWaitH.Observe(waited.Microseconds())
	if err != nil {
		switch {
		case errors.Is(err, errShed):
			s.reqShed.Inc()
			s.writeError(w, http.StatusTooManyRequests, "overloaded: inflight limit reached within the queue-wait budget", true)
		case errors.Is(err, context.DeadlineExceeded):
			s.reqDeadline.Inc()
			s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded while queued for admission", false)
		default: // client went away while queued; nobody is listening
			s.reqCanceled.Inc()
		}
		return
	}
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.lim.release()
	}()

	start := time.Now()
	res, err := s.svc.Scan(ctx, ivs)
	elapsed := time.Since(start)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.reqDeadline.Inc()
			s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded mid-scan", false)
		case errors.Is(err, context.Canceled):
			s.reqCanceled.Inc() // client disconnected; response goes nowhere
		case errors.Is(err, service.ErrShuttingDown):
			s.reqDraining.Inc()
			s.writeError(w, http.StatusServiceUnavailable, "shutting down", true)
		default:
			s.reqBad.Inc()
			s.writeError(w, http.StatusBadRequest, err.Error(), false)
		}
		return
	}
	s.latency.Observe(elapsed.Microseconds())
	s.reqOK.Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(toResponse(res, elapsed.Microseconds()))
}

// ParseIntervals parses the /scan wire form "lo-hi,lo-hi,…".
//
// Deprecated: use wiretext.ParseIntervals (internal/wire/text).
func ParseIntervals(v string) ([]query.Interval, error) {
	return wiretext.ParseIntervals(v)
}

// FormatIntervals renders intervals in the /scan wire form.
//
// Deprecated: use wiretext.FormatIntervals (internal/wire/text).
func FormatIntervals(ivs []query.Interval) string {
	return wiretext.FormatIntervals(ivs)
}

// handleWrite builds the POST /put and /delete handlers: decode one record,
// route it through the service's durable write path, acknowledge only after
// the owning shard's WAL has synced it. On a read-only (in-memory) service
// the endpoints answer 403.
func (s *Server) handleWrite(op func(*service.Service, context.Context, store.Record, ...service.WriteOption) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reqTotal.Inc()
		if r.Method != http.MethodPost {
			s.reqBad.Inc()
			w.Header().Set("Allow", http.MethodPost)
			s.writeError(w, http.StatusMethodNotAllowed, "POST only", false)
			return
		}
		if s.draining.Load() {
			s.reqDraining.Inc()
			s.writeError(w, http.StatusServiceUnavailable, "draining", true)
			return
		}
		var req WriteRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			s.reqBad.Inc()
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("body: %v", err), false)
			return
		}
		if err := op(s.svc, r.Context(), store.Record{Point: req.Point, Payload: req.Payload}); err != nil {
			s.writeWriteError(w, err)
			return
		}
		s.reqOK.Inc()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(WriteResponse{OK: true, Acked: 1, Required: 1})
	}
}

// handleDigest answers GET /digest?ivs=lo-hi,…[&timeout=250ms]: an
// order-independent (count, checksum) summary of the records held in the
// given curve intervals, the primitive anti-entropy compares across
// replicas. A range the node cannot fully read answers 503 — a digest over
// dark pages would report divergence that is really unavailability.
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Inc()
	if s.draining.Load() {
		s.reqDraining.Inc()
		s.writeError(w, http.StatusServiceUnavailable, "draining", true)
		return
	}
	q := r.URL.Query()
	ivs, err := ParseIntervals(q.Get("ivs"))
	if err != nil {
		s.reqBad.Inc()
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("ivs: %v", err), false)
		return
	}
	timeout, err := s.parseTimeout(q.Get("timeout"))
	if err != nil {
		s.reqBad.Inc()
		s.writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	waited, err := s.lim.acquire(ctx)
	s.queueWaitH.Observe(waited.Microseconds())
	if err != nil {
		switch {
		case errors.Is(err, errShed):
			s.reqShed.Inc()
			s.writeError(w, http.StatusTooManyRequests, "overloaded: inflight limit reached within the queue-wait budget", true)
		case errors.Is(err, context.DeadlineExceeded):
			s.reqDeadline.Inc()
			s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded while queued for admission", false)
		default: // client went away while queued; nobody is listening
			s.reqCanceled.Inc()
		}
		return
	}
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.lim.release()
	}()

	start := time.Now()
	d, err := s.svc.Digest(ctx, ivs)
	elapsed := time.Since(start)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.reqDeadline.Inc()
			s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded mid-digest", false)
		case errors.Is(err, context.Canceled):
			s.reqCanceled.Inc() // client disconnected; response goes nowhere
		case errors.Is(err, service.ErrShuttingDown):
			s.reqDraining.Inc()
			s.writeError(w, http.StatusServiceUnavailable, "shutting down", true)
		case errors.Is(err, service.ErrDigestUnavailable):
			s.reqErrors.Inc()
			s.writeError(w, http.StatusServiceUnavailable, err.Error(), true)
		default:
			s.reqBad.Inc()
			s.writeError(w, http.StatusBadRequest, err.Error(), false)
		}
		return
	}
	s.latency.Observe(elapsed.Microseconds())
	s.reqOK.Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(toDigestResponse(d, elapsed.Microseconds()))
}

// handleFlush answers POST /flush: persist every shard's memtable into an
// on-disk run.
func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Inc()
	if r.Method != http.MethodPost {
		s.reqBad.Inc()
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "POST only", false)
		return
	}
	if s.draining.Load() {
		s.reqDraining.Inc()
		s.writeError(w, http.StatusServiceUnavailable, "draining", true)
		return
	}
	if err := s.svc.Flush(r.Context()); err != nil {
		s.writeWriteError(w, err)
		return
	}
	s.reqOK.Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(WriteResponse{OK: true, Acked: 1, Required: 1})
}

// writeWriteError maps a write-path failure to its status code.
func (s *Server) writeWriteError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, service.ErrReadOnly):
		s.reqBad.Inc()
		s.writeError(w, http.StatusForbidden, "read-only: the daemon was started without -data", false)
	case errors.Is(err, service.ErrShuttingDown), errors.Is(err, store.ErrClosed):
		s.reqDraining.Inc()
		s.writeError(w, http.StatusServiceUnavailable, "shutting down", true)
	case errors.Is(err, context.DeadlineExceeded):
		s.reqDeadline.Inc()
		s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded", false)
	case errors.Is(err, context.Canceled):
		s.reqCanceled.Inc() // client disconnected; response goes nowhere
	default:
		s.reqErrors.Inc()
		s.writeError(w, http.StatusBadRequest, err.Error(), false)
	}
}

// parseQuery extracts the box corners and the effective per-request
// timeout.
func (s *Server) parseQuery(r *http.Request) (query.Box, time.Duration, error) {
	q := r.URL.Query()
	u := s.svc.Curve().Universe()
	lo, err := ParsePoint(q.Get("lo"), u.D())
	if err != nil {
		return query.Box{}, 0, fmt.Errorf("lo: %w", err)
	}
	hi, err := ParsePoint(q.Get("hi"), u.D())
	if err != nil {
		return query.Box{}, 0, fmt.Errorf("hi: %w", err)
	}
	box, err := query.NewBox(u, lo, hi)
	if err != nil {
		return query.Box{}, 0, err
	}
	timeout, err := s.parseTimeout(q.Get("timeout"))
	if err != nil {
		return query.Box{}, 0, err
	}
	return box, timeout, nil
}

// parseTimeout resolves the ?timeout parameter against the default and the
// cap.
func (s *Server) parseTimeout(t string) (time.Duration, error) {
	if t == "" {
		return s.clampTimeout(0), nil
	}
	d, err := time.ParseDuration(t)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("timeout: bad duration %q", t)
	}
	return s.clampTimeout(d), nil
}

// clampTimeout resolves a requested deadline against the default and the
// cap — the one deadline policy both the HTTP and wire front doors apply.
// Zero means "no deadline requested" and takes the server default.
func (s *Server) clampTimeout(d time.Duration) time.Duration {
	if d <= 0 {
		d = s.defaultTimeout
	}
	if s.maxTimeout > 0 && d > s.maxTimeout {
		d = s.maxTimeout
	}
	return d
}

// ParsePoint parses "3,17,…" into d coordinates — the /query corner wire
// form.
//
// Deprecated: use wiretext.ParsePoint (internal/wire/text).
func ParsePoint(v string, d int) ([]uint32, error) {
	return wiretext.ParsePoint(v, d)
}

// writeError sends the JSON error body; retryable responses carry a
// Retry-After hint so well-behaved clients back off instead of hammering.
func (s *Server) writeError(w http.ResponseWriter, code int, msg string, retryable bool) {
	w.Header().Set("Content-Type", "application/json")
	if retryable {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSec))
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorResponse{Error: msg})
}

// handleMetrics serves the registry: aligned text by default,
// ?format=json (or Accept: application/json) for the machine-readable
// form with globally sorted keys.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	wantJSON := r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json")
	if wantJSON {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, s.reg.JSON())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.reg.Report())
}

// handleHealthz reports process liveness: 200 as long as the daemon runs,
// draining included.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness to take traffic: 503 once draining so load
// balancers stop routing here before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}
