package server_test

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/wire"
)

// TestWireCompressedScanMatchesPlain: a scan with the compression flag
// returns bit-identical records and trailer to the in-process service —
// decompression is transparent in the client — and the frames on the wire
// actually carry the compressed bit, so the flag is not silently ignored.
func TestWireCompressedScanMatchesPlain(t *testing.T) {
	svc := newTestService(t, 0)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	addr := startWire(t, srv)

	n := svc.Curve().Universe().N()
	ivs := []query.Interval{{Lo: 0, Hi: n}}
	want, err := svc.Scan(context.Background(), ivs)
	if err != nil {
		t.Fatal(err)
	}

	tr := &client.BinaryTransport{Addr: addr, Compress: true}
	defer tr.Close()
	st, err := tr.ScanStream(context.Background(), ivs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	i := 0
	for {
		batch, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range batch {
			if !r.Point.Equal(want.Records[i].Point) || r.Payload != want.Records[i].Payload {
				t.Fatalf("record %d differs under compression: %v/%d want %v/%d",
					i, r.Point, r.Payload, want.Records[i].Point, want.Records[i].Payload)
			}
			i++
		}
	}
	if i != len(want.Records) {
		t.Fatalf("streamed %d records, want %d", i, len(want.Records))
	}
	trailer, ok := st.Trailer()
	if !ok || trailer.PagesRead != want.PagesRead || !trailer.Complete() {
		t.Fatalf("trailer %+v (ok=%v), want pages=%d complete", trailer, ok, want.PagesRead)
	}

	// Raw socket: the same request must produce at least one frame with
	// the compressed bit set, and the compressed response must be smaller
	// than the plain one end to end.
	compressedTypes, compressedBytes := rawScanFrames(t, addr, ivs, true)
	_, plainBytes := rawScanFrames(t, addr, ivs, false)
	sawCompressed := false
	for _, typ := range compressedTypes {
		if typ&wire.CompressedBit != 0 {
			sawCompressed = true
			if typ&^wire.CompressedBit != wire.TBatch {
				t.Fatalf("compressed bit on type 0x%02x, only batches should compress", typ)
			}
		}
	}
	if !sawCompressed {
		t.Fatal("no compressed frame on the wire despite the negotiated flag")
	}
	if compressedBytes >= plainBytes {
		t.Fatalf("compressed response %d bytes, plain %d: compression did not shrink the transfer", compressedBytes, plainBytes)
	}
}

// rawScanFrames sends one TScan over a raw socket and reads response frame
// headers without decompressing, returning the on-wire type bytes and the
// total response size.
func rawScanFrames(t *testing.T, addr string, ivs []query.Interval, compress bool) ([]byte, int) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload, err := wire.AppendScanRequest(nil, wire.ScanRequest{Ivs: ivs, Compress: compress})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(wire.AppendFrame(nil, wire.Frame{Type: wire.TScan, ID: 1, Payload: payload})); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	var types []byte
	total := 0
	hdr := make([]byte, wire.HeaderSize)
	for {
		if _, err := io.ReadFull(c, hdr); err != nil {
			t.Fatalf("reading frame header: %v", err)
		}
		typ := hdr[3]
		types = append(types, typ)
		n := int(binary.LittleEndian.Uint32(hdr[12:16]))
		if _, err := io.CopyN(io.Discard, c, int64(n)); err != nil {
			t.Fatalf("reading frame payload: %v", err)
		}
		total += wire.HeaderSize + n
		if base := typ &^ wire.CompressedBit; base == wire.TTrailer || base == wire.TError {
			return types, total
		}
	}
}

// TestWireStreamDisconnectReleases: a client that vanishes mid-stream must
// not pin the server's admission slot or shard workers. With the inflight
// limit at 1, a leaked slot would make every follow-up request shed — so a
// promptly successful follow-up query is the release proof.
func TestWireStreamDisconnectReleases(t *testing.T) {
	svc := newTestService(t, 500*time.Microsecond) // slow pages: the scan outlives the disconnect
	srv, err := server.New(svc, server.WithMaxInflight(1))
	if err != nil {
		t.Fatal(err)
	}
	addr := startWire(t, srv)

	n := svc.Curve().Universe().N()
	tr := &client.BinaryTransport{Addr: addr, Conns: 1}
	st, err := tr.ScanStream(context.Background(), []query.Interval{{Lo: 0, Hi: n}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err != nil {
		t.Fatalf("first batch before disconnect: %v", err)
	}
	// Drop the connection with the stream mid-flight. The server sees the
	// read side close, cancels the per-connection context, and the stream's
	// shard legs unwind between batches.
	st.Close()
	tr.Close()

	u := svc.Curve().Universe()
	box, err := query.NewBox(u, u.MustPoint(0, 0), u.MustPoint(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	tr2 := &client.BinaryTransport{Addr: addr}
	defer tr2.Close()
	deadline := time.Now().Add(15 * time.Second)
	for {
		_, err := tr2.Query(context.Background(), box, 0)
		if err == nil {
			return
		}
		var re *client.RetryableError
		if !errors.As(err, &re) {
			t.Fatalf("follow-up query failed terminally: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("inflight slot never released after disconnect: still %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWireTornConnectionTruncated: when the connection dies before the
// trailer arrives, the client must surface wire.ErrTruncated (retryably) —
// batches without a trailer are an uncommitted result, never silently
// returned as complete. A relay between client and server forwards every
// frame but cuts the connection partway through the trailer frame.
func TestWireTornConnectionTruncated(t *testing.T) {
	svc := newTestService(t, 0)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	addr := startWire(t, srv)

	relay, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	go func() {
		cc, err := relay.Accept()
		if err != nil {
			return
		}
		defer cc.Close()
		sc, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		defer sc.Close()
		go io.Copy(sc, cc)
		hdr := make([]byte, wire.HeaderSize)
		for {
			if _, err := io.ReadFull(sc, hdr); err != nil {
				return
			}
			n := int64(binary.LittleEndian.Uint32(hdr[12:16]))
			if hdr[3]&^wire.CompressedBit == wire.TTrailer {
				// Forward the header and half the payload, then tear the
				// connection: the torn-tail shape a crash leaves behind.
				cc.Write(hdr)
				io.CopyN(cc, sc, n/2)
				return
			}
			if _, err := cc.Write(hdr); err != nil {
				return
			}
			if _, err := io.CopyN(cc, sc, n); err != nil {
				return
			}
		}
	}()

	n := svc.Curve().Universe().N()
	tr := &client.BinaryTransport{Addr: relay.Addr().String(), Conns: 1}
	defer tr.Close()
	st, err := tr.ScanStream(context.Background(), []query.Interval{{Lo: 0, Hi: n}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	batches := 0
	for {
		_, err := st.Next()
		if err == nil {
			batches++
			continue
		}
		if err == io.EOF {
			t.Fatal("torn stream reported clean EOF: truncation went undetected")
		}
		if !errors.Is(err, wire.ErrTruncated) {
			t.Fatalf("torn stream error %v, want wire.ErrTruncated", err)
		}
		var re *client.RetryableError
		if !errors.As(err, &re) {
			t.Fatalf("truncation not classified retryable: %v", err)
		}
		break
	}
	if batches == 0 {
		t.Fatal("no batches before the tear; the cut did not exercise mid-stream truncation")
	}
	if _, ok := st.Trailer(); ok {
		t.Fatal("trailer reported present on a torn stream")
	}
}
