package server

import (
	"fmt"
	"strconv"

	"repro/internal/service"
)

// The wire types are the daemon's JSON vocabulary, shared with
// internal/client so both ends marshal the same shapes.

// WireRecord is one stored record on the wire.
type WireRecord struct {
	Point   []uint32 `json:"point"`
	Payload uint64   `json:"payload"`
}

// WireInterval is one half-open curve-index interval [Lo, Hi) on the wire.
type WireInterval struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
}

// QueryResponse is the body of a successful /query response.
type QueryResponse struct {
	// Records holds the readable records inside the box, in curve order.
	Records []WireRecord `json:"records"`
	// Unavailable lists the curve intervals no shard could serve (sorted,
	// disjoint, merged). Empty means the answer is complete.
	Unavailable []WireInterval `json:"unavailable,omitempty"`
	// ShardsQueried counts the shards the query fanned out to.
	ShardsQueried int `json:"shards_queried"`
	// Complete mirrors len(Unavailable) == 0 for clients that do not want
	// to reason about intervals.
	Complete bool `json:"complete"`
	// ElapsedUS is the server-side service time in microseconds, admission
	// queueing excluded.
	ElapsedUS int64 `json:"elapsed_us"`
	// PagesRead counts distinct leaf pages the query touched, dark pages
	// included — the paper's clustering cost made observable per request.
	PagesRead int64 `json:"pages_read"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// WireInfo is the body of GET /wireinfo: the daemon's advertised binary
// protocol listener, if any. Daemons not serving the binary protocol answer
// 404, and clients fall back to JSON.
type WireInfo struct {
	// Addr is the "host:port" of the binary wire listener.
	Addr string `json:"addr"`
	// Compress reports that the listener honors per-request compression
	// (wire.FlagCompress): deflated response frames for clients that ask.
	// Clients must not send the request flags byte to a daemon that did
	// not advertise it.
	Compress bool `json:"compress,omitempty"`
	// Write reports that the listener accepts TPut/TDelete/TFlush frames —
	// only durable (-data) daemons advertise it. A router probing a daemon
	// without the capability must route writes through the HTTP /put form
	// instead of sending frames the daemon will drop the connection over.
	Write bool `json:"write,omitempty"`
}

// WriteRequest is the body of POST /put and POST /delete: one record,
// routed to the shard owning its curve position.
type WriteRequest struct {
	Point   []uint32 `json:"point"`
	Payload uint64   `json:"payload"`
}

// WriteResponse is the body of a successful /put, /delete or /flush
// response. A put or delete is acknowledged only after the owning shard's
// WAL has synced it. A standalone daemon answers Acked=1, Required=1; a
// router reports its replica fan-out — how many replicas applied the
// write, the quorum it waited for, and how many known-dead replicas were
// recorded as missed for anti-entropy to repair.
type WriteResponse struct {
	OK       bool `json:"ok"`
	Acked    int  `json:"acked,omitempty"`
	Required int  `json:"required,omitempty"`
	Missed   int  `json:"missed,omitempty"`
}

// DigestResponse is the body of GET /digest: the anti-entropy range
// summary. Sum is rendered as a hex string because JSON numbers cannot
// carry a full uint64 exactly.
type DigestResponse struct {
	Count      uint64 `json:"count"`
	Sum        string `json:"sum"`
	Generation uint64 `json:"generation"`
	ElapsedUS  int64  `json:"elapsed_us"`
}

// Digest converts the wire form back to the service's digest shape.
func (d DigestResponse) Digest() (service.RangeDigest, error) {
	sum, err := strconv.ParseUint(d.Sum, 16, 64)
	if err != nil {
		return service.RangeDigest{}, fmt.Errorf("digest sum %q: %w", d.Sum, err)
	}
	return service.RangeDigest{Count: d.Count, Sum: sum, Generation: d.Generation}, nil
}

// toDigestResponse converts a service digest to its wire form.
func toDigestResponse(d service.RangeDigest, elapsedUS int64) DigestResponse {
	return DigestResponse{
		Count:      d.Count,
		Sum:        strconv.FormatUint(d.Sum, 16),
		Generation: d.Generation,
		ElapsedUS:  elapsedUS,
	}
}

// toResponse converts a service result to its wire form.
func toResponse(res service.Result, elapsedUS int64) QueryResponse {
	out := QueryResponse{
		Records:       make([]WireRecord, len(res.Records)),
		ShardsQueried: res.ShardsQueried,
		Complete:      res.Complete(),
		ElapsedUS:     elapsedUS,
		PagesRead:     res.PagesRead,
	}
	for i, r := range res.Records {
		out.Records[i] = WireRecord{Point: r.Point, Payload: r.Payload}
	}
	if len(res.Unavailable) > 0 {
		out.Unavailable = make([]WireInterval, len(res.Unavailable))
		for i, iv := range res.Unavailable {
			out.Unavailable[i] = WireInterval{Lo: iv.Lo, Hi: iv.Hi}
		}
	}
	return out
}
