package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/server"
	"repro/internal/service"
)

// newDurableServer builds a server over an initially empty durable service
// in dir: 2 shards over 16×16 cells.
func newDurableServer(t *testing.T, dir string) (*server.Server, *service.Service) {
	t.Helper()
	u := grid.MustNew(2, 4)
	c := curve.NewHilbert(u)
	svc, err := service.New(c, nil, service.WithShards(2), service.WithDurableDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	return srv, svc
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestWriteEndpoints drives the HTTP write path end to end: records put
// over the wire are served by /query, /delete removes them, /flush
// persists the memtables, and the durability counters appear on /metrics.
func TestWriteEndpoints(t *testing.T) {
	dir := t.TempDir()
	srv, _ := newDurableServer(t, dir)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 20; i++ {
		body := fmt.Sprintf(`{"point":[%d,%d],"payload":%d}`, i%16, i/16, i)
		resp := postJSON(t, ts.URL+"/put", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("put %d: status %d", i, resp.StatusCode)
		}
		var ack server.WriteResponse
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil || !ack.OK {
			t.Fatalf("put %d: bad ack (%v, %+v)", i, err, ack)
		}
		resp.Body.Close()
	}
	if resp := postJSON(t, ts.URL+"/delete", `{"point":[3,0],"payload":3}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := postJSON(t, ts.URL+"/flush", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/query?lo=0,0&hi=15,15")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Records) != 19 {
		t.Fatalf("query after 20 puts and 1 delete served %d records, want 19", len(qr.Records))
	}
	for _, r := range qr.Records {
		if r.Payload == 3 {
			t.Fatal("deleted record still served")
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	for _, name := range []string{"wal.appends", "durable.flushes", "writes.total"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("/metrics missing durability series %q", name)
		}
	}
}

// TestWriteEndpointsSurviveRestart: acked writes are served after the
// daemon's service is closed and a fresh one is opened over the directory.
func TestWriteEndpointsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	srv, svc := newDurableServer(t, dir)
	ts := httptest.NewServer(srv.Handler())
	for i := 0; i < 12; i++ {
		resp := postJSON(t, ts.URL+"/put", fmt.Sprintf(`{"point":[%d,1],"payload":%d}`, i, 100+i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("put %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	ts.Close()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, _ := newDurableServer(t, dir)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/query?lo=0,0&hi=15,15")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Records) != 12 {
		t.Fatalf("restarted daemon serves %d records, want the 12 acked puts", len(qr.Records))
	}
}

// TestWriteEndpointErrors pins the status-code contract of the write path.
func TestWriteEndpointErrors(t *testing.T) {
	// Read-only daemon: all three endpoints answer 403.
	ro := newTestService(t, 0)
	roSrv, err := server.New(ro)
	if err != nil {
		t.Fatal(err)
	}
	roTS := httptest.NewServer(roSrv.Handler())
	defer roTS.Close()
	for _, ep := range []string{"/put", "/delete", "/flush"} {
		body := `{"point":[1,1],"payload":1}`
		resp := postJSON(t, roTS.URL+ep, body)
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("%s on read-only daemon: status %d, want 403", ep, resp.StatusCode)
		}
		resp.Body.Close()
	}

	srv, _ := newDurableServer(t, t.TempDir())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cases := []struct {
		name   string
		do     func() *http.Response
		status int
	}{
		{"get-put", func() *http.Response {
			resp, err := http.Get(ts.URL + "/put")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusMethodNotAllowed},
		{"bad-json", func() *http.Response {
			return postJSON(t, ts.URL+"/put", `{"point":`)
		}, http.StatusBadRequest},
		{"point-outside-universe", func() *http.Response {
			return postJSON(t, ts.URL+"/put", `{"point":[99,99],"payload":1}`)
		}, http.StatusBadRequest},
		{"wrong-dimension", func() *http.Response {
			return postJSON(t, ts.URL+"/put", `{"point":[1],"payload":1}`)
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := tc.do()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		resp.Body.Close()
	}
}
