package server_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/client"
	"repro/internal/faultio"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/store"
)

// newFaultedDifferentialServer builds a service with deterministically lost
// pages (faultio LostFrac only: a lost page fails every read, as a pure
// function of the seed — so two scans of the same intervals degrade
// identically however they arrive), serves it over both front doors, and
// returns a JSON client and a binary client against the same daemon.
func newFaultedDifferentialServer(t *testing.T, seed int64, lostFrac float64) (jsonCl, binCl *client.Client) {
	t.Helper()
	svc := newTestService(t, 0, service.WithShardStoreOptions(func(j int) []store.Option {
		return []store.Option{store.WithDeviceWrapper(func(d store.PageDevice) (store.PageDevice, error) {
			return faultio.Wrap(d, faultio.Config{
				Seed:     seed + int64(j)*1009,
				LostFrac: lostFrac,
			})
		})}
	}))
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(hl)
	t.Cleanup(func() { hl.Close() })
	wireAddr := startWire(t, srv)

	jsonCl = client.New("http://" + hl.Addr().String())
	binCl = client.New("http://"+hl.Addr().String(),
		client.WithTransport(&client.BinaryTransport{Addr: wireAddr}))
	t.Cleanup(func() { jsonCl.Close(); binCl.Close() })
	return jsonCl, binCl
}

// randomIntervals draws a sorted, disjoint interval set over [0, n) from
// rng: random curve indices, sorted and deduplicated, paired off.
func randomIntervals(rng *rand.Rand, n uint64, count int) []query.Interval {
	cuts := make([]uint64, 0, 2*count)
	for len(cuts) < 2*count {
		cuts = append(cuts, rng.Uint64()%n)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	ivs := make([]query.Interval, 0, count)
	for i := 0; i+1 < len(cuts); i += 2 {
		lo, hi := cuts[i], cuts[i+1]+1
		if len(ivs) > 0 && lo < ivs[len(ivs)-1].Hi {
			continue // overlaps the previous pair after dedup-by-sort; drop
		}
		ivs = append(ivs, query.Interval{Lo: lo, Hi: hi})
	}
	return ivs
}

// diffResponses fails unless the two responses are identical: record
// sequence, dark intervals, pages read, shards queried, and the complete
// flag. ElapsedUS is the one field allowed to differ — it measures the
// server, not the answer.
func diffResponses(a, b server.QueryResponse) error {
	if len(a.Records) != len(b.Records) {
		return fmt.Errorf("record count %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i].Payload != b.Records[i].Payload || len(a.Records[i].Point) != len(b.Records[i].Point) {
			return fmt.Errorf("record %d: %v/%d vs %v/%d", i, a.Records[i].Point, a.Records[i].Payload, b.Records[i].Point, b.Records[i].Payload)
		}
		for d := range a.Records[i].Point {
			if a.Records[i].Point[d] != b.Records[i].Point[d] {
				return fmt.Errorf("record %d coord %d: %d vs %d", i, d, a.Records[i].Point[d], b.Records[i].Point[d])
			}
		}
	}
	if len(a.Unavailable) != len(b.Unavailable) {
		return fmt.Errorf("dark interval count %d vs %d", len(a.Unavailable), len(b.Unavailable))
	}
	for i := range a.Unavailable {
		if a.Unavailable[i] != b.Unavailable[i] {
			return fmt.Errorf("dark interval %d: %+v vs %+v", i, a.Unavailable[i], b.Unavailable[i])
		}
	}
	if a.PagesRead != b.PagesRead {
		return fmt.Errorf("pages read %d vs %d", a.PagesRead, b.PagesRead)
	}
	if a.ShardsQueried != b.ShardsQueried {
		return fmt.Errorf("shards queried %d vs %d", a.ShardsQueried, b.ShardsQueried)
	}
	if a.Complete != b.Complete {
		return fmt.Errorf("complete %v vs %v", a.Complete, b.Complete)
	}
	return nil
}

// TestTransportDifferentialUnderFaults: the binary transport is an
// encoding, not a different database — for random interval scans and box
// queries against a daemon with deterministically lost pages, the JSON and
// binary answers are identical record for record, including the degraded
// parts (dark intervals, pages read). Concurrent workers keep several
// streams pipelined on the shared connections while comparing, so -race
// sweeps the demultiplexer as well.
func TestTransportDifferentialUnderFaults(t *testing.T) {
	jsonCl, binCl := newFaultedDifferentialServer(t, 42, 0.05)

	const workers = 4
	const scansPerWorker = 12
	n := uint64(64 * 64)
	var degraded atomic.Int64 // guards against a vacuous pass: some scans must hit lost pages
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(1000 + int64(w)))
			for i := 0; i < scansPerWorker; i++ {
				ivs := randomIntervals(rng, n, 1+rng.Intn(8))
				jr, err := jsonCl.ScanIntervals(context.Background(), ivs)
				if err != nil {
					errs <- fmt.Errorf("worker %d scan %d json: %w", w, i, err)
					return
				}
				br, err := binCl.ScanIntervals(context.Background(), ivs)
				if err != nil {
					errs <- fmt.Errorf("worker %d scan %d binary: %w", w, i, err)
					return
				}
				if err := diffResponses(jr, br); err != nil {
					errs <- fmt.Errorf("worker %d scan %d (ivs %v): transports disagree: %w", w, i, ivs, err)
					return
				}
				if !jr.Complete {
					degraded.Add(1)
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if degraded.Load() == 0 {
		t.Fatal("no scan was degraded: the fault schedule never fired, the differential is vacuous")
	}
}

// TestTransportDifferentialStreaming: the streaming variant of the binary
// scan concatenates to exactly the JSON buffered response under the same
// fault schedule — chunking is invisible in the answer.
func TestTransportDifferentialStreaming(t *testing.T) {
	jsonCl, binCl := newFaultedDifferentialServer(t, 7, 0.08)
	rng := rand.New(rand.NewSource(2024))
	n := uint64(64 * 64)
	for i := 0; i < 8; i++ {
		ivs := randomIntervals(rng, n, 1+rng.Intn(5))
		jr, err := jsonCl.ScanIntervals(context.Background(), ivs)
		if err != nil {
			t.Fatalf("scan %d json: %v", i, err)
		}
		st, err := binCl.ScanStream(context.Background(), ivs)
		if err != nil {
			t.Fatalf("scan %d binary stream: %v", i, err)
		}
		br, err := st.Collect()
		if err != nil {
			t.Fatalf("scan %d binary collect: %v", i, err)
		}
		if err := diffResponses(jr, br); err != nil {
			t.Fatalf("scan %d (ivs %v): stream vs JSON disagree: %v", i, ivs, err)
		}
	}
}
