package server_test

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/wire"
)

// startWire serves the binary protocol for srv on a fresh loopback
// listener and returns its address.
func startWire(t *testing.T, srv *server.Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeWire(l)
	t.Cleanup(func() { l.Close() })
	return l.Addr().String()
}

// TestWireQueryMatchesInProcess: a box query over the binary transport
// returns exactly what the service returns in-process — records in curve
// order, pages read, shards queried.
func TestWireQueryMatchesInProcess(t *testing.T) {
	svc := newTestService(t, 0)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	addr := startWire(t, srv)

	u := svc.Curve().Universe()
	box, err := query.NewBox(u, u.MustPoint(8, 8), u.MustPoint(23, 23))
	if err != nil {
		t.Fatal(err)
	}
	want, err := svc.Range(context.Background(), box)
	if err != nil {
		t.Fatal(err)
	}

	tr := &client.BinaryTransport{Addr: addr}
	defer tr.Close()
	got, err := tr.Query(context.Background(), box, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("got %d records, want %d", len(got.Records), len(want.Records))
	}
	for i, r := range want.Records {
		if !r.Point.Equal(got.Records[i].Point) || r.Payload != got.Records[i].Payload {
			t.Fatalf("record %d: %v/%d want %v/%d", i, got.Records[i].Point, got.Records[i].Payload, r.Point, r.Payload)
		}
	}
	if got.ShardsQueried != want.ShardsQueried || got.PagesRead != want.PagesRead || !got.Complete {
		t.Fatalf("summary: %+v vs %+v", got, want)
	}
}

// TestWireScanStreamsInBatches: a full-universe scan streams multiple
// TBatch frames whose concatenation is the in-process result, and the
// trailer carries the pages-read summary.
func TestWireScanStreamsInBatches(t *testing.T) {
	svc := newTestService(t, 0)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	addr := startWire(t, srv)

	n := svc.Curve().Universe().N()
	ivs := []query.Interval{{Lo: 0, Hi: n}}
	want, err := svc.Scan(context.Background(), ivs)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Records) <= wire.DefaultBatchRecords {
		t.Fatalf("test needs >1 batch, have %d records", len(want.Records))
	}

	tr := &client.BinaryTransport{Addr: addr}
	defer tr.Close()
	st, err := tr.ScanStream(context.Background(), ivs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var batches, total int
	i := 0
	for {
		batch, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		batches++
		total += len(batch)
		for _, r := range batch {
			if !r.Point.Equal(want.Records[i].Point) || r.Payload != want.Records[i].Payload {
				t.Fatalf("record %d out of curve order: %v/%d want %v/%d", i, r.Point, r.Payload, want.Records[i].Point, want.Records[i].Payload)
			}
			i++
		}
	}
	if total != len(want.Records) || batches < 2 {
		t.Fatalf("streamed %d records in %d batches, want %d records in >=2 batches", total, batches, len(want.Records))
	}
	trailer, ok := st.Trailer()
	if !ok || trailer.PagesRead != want.PagesRead || trailer.ShardsQueried != want.ShardsQueried || !trailer.Complete() {
		t.Fatalf("trailer %+v (ok=%v), want pages=%d shards=%d complete", trailer, ok, want.PagesRead, want.ShardsQueried)
	}
}

// TestWireBadRequestTerminal: unsorted scan intervals come back as a
// terminal (non-retryable) error, mirroring HTTP 400.
func TestWireBadRequestTerminal(t *testing.T) {
	svc := newTestService(t, 0)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	addr := startWire(t, srv)
	tr := &client.BinaryTransport{Addr: addr}
	defer tr.Close()

	_, err = tr.Scan(context.Background(), []query.Interval{{Lo: 9, Hi: 12}, {Lo: 0, Hi: 7}}, 0)
	if err == nil {
		t.Fatal("unsorted intervals accepted")
	}
	var re *client.RetryableError
	if errors.As(err, &re) {
		t.Fatalf("bad request classified retryable: %v", err)
	}
}

// TestWirePipelining: many concurrent queries multiplex over one
// connection and every response demultiplexes to its caller intact.
func TestWirePipelining(t *testing.T) {
	svc := newTestService(t, 0)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	addr := startWire(t, srv)
	tr := &client.BinaryTransport{Addr: addr, Conns: 1}
	defer tr.Close()

	u := svc.Curve().Universe()
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := uint32(w % 8)
			box, err := query.NewBox(u, u.MustPoint(lo*8, lo*8), u.MustPoint(lo*8+7, lo*8+7))
			if err != nil {
				errs <- err
				return
			}
			want, err := svc.Range(context.Background(), box)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 4; i++ {
				got, err := tr.Query(context.Background(), box, 0)
				if err != nil {
					errs <- err
					return
				}
				if len(got.Records) != len(want.Records) {
					errs <- errors.New("pipelined response mismatched its request")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWirePingAndDrain: ping answers ready, drain makes new requests
// retryable-unavailable and in-flight connections close.
func TestWirePingAndDrain(t *testing.T) {
	svc := newTestService(t, 0)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	addr := startWire(t, srv)
	tr := &client.BinaryTransport{Addr: addr}
	defer tr.Close()

	ready, err := tr.Ping(context.Background())
	if err != nil || !ready {
		t.Fatalf("ping before drain: ready=%v err=%v", ready, err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	u := svc.Curve().Universe()
	box, err := query.NewBox(u, u.MustPoint(0, 0), u.MustPoint(7, 7))
	if err != nil {
		t.Fatal(err)
	}
	_, err = tr.Query(context.Background(), box, 0)
	if err == nil {
		t.Fatal("query after drain succeeded")
	}
	var re *client.RetryableError
	if !errors.As(err, &re) {
		t.Fatalf("drain rejection not retryable: %v", err)
	}
}

// TestWireProtocolViolation: a client sending a response-direction frame
// gets its connection dropped, not a hung stream.
func TestWireProtocolViolation(t *testing.T) {
	svc := newTestService(t, 0)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	addr := startWire(t, srv)

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(wire.AppendFrame(nil, wire.Frame{Type: wire.TTrailer, ID: 1})); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("server answered a response-direction frame instead of closing")
	} else if strings.Contains(err.Error(), "timeout") {
		t.Fatalf("server hung instead of closing: %v", err)
	}
}

// TestWireDeadline: a timeout shorter than the scan maps to CodeDeadline,
// a terminal error.
func TestWireDeadline(t *testing.T) {
	svc := newTestService(t, 2*time.Millisecond)
	srv, err := server.New(svc, server.WithMaxInflight(1))
	if err != nil {
		t.Fatal(err)
	}
	addr := startWire(t, srv)
	tr := &client.BinaryTransport{Addr: addr}
	defer tr.Close()

	n := svc.Curve().Universe().N()
	_, err = tr.Scan(context.Background(), []query.Interval{{Lo: 0, Hi: n}}, time.Millisecond)
	if err == nil {
		t.Fatal("deadline ignored")
	}
	var re *client.RetryableError
	if errors.As(err, &re) {
		t.Fatalf("deadline classified retryable: %v", err)
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestWireInfoAdvertisement: /wireinfo is 404 until AdvertiseWire, then
// serves the address; client.WireAddr mirrors both states.
func TestWireInfoAdvertisement(t *testing.T) {
	svc := newTestService(t, 0)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(hl)
	defer hl.Close()
	base := "http://" + hl.Addr().String()

	c := client.New(base)
	if addr, err := c.WireAddr(context.Background()); err != nil || addr != "" {
		t.Fatalf("before advertise: %q, %v", addr, err)
	}
	srv.AdvertiseWire("127.0.0.1:7173")
	if addr, err := c.WireAddr(context.Background()); err != nil || addr != "127.0.0.1:7173" {
		t.Fatalf("after advertise: %q, %v", addr, err)
	}

	var drainErr error
	func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		drainErr = srv.Drain(ctx)
	}()
	if drainErr != nil {
		t.Fatalf("drain: %v", drainErr)
	}
}
