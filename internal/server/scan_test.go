package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/service"
)

// TestScanEndToEnd: /scan with the whole index space returns exactly what
// /query over the whole universe returns — the interval path and the box
// path serve the same records in the same order.
func TestScanEndToEnd(t *testing.T) {
	svc := newTestService(t, 0)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	n := svc.Curve().Universe().N()
	var scanResp, queryResp server.QueryResponse
	getJSON(t, ts.URL+"/scan?ivs="+server.FormatIntervals([]query.Interval{{Lo: 0, Hi: n}}), &scanResp)
	getJSON(t, queryURL(ts.URL, "0,0", "63,63", ""), &queryResp)

	if !scanResp.Complete || len(scanResp.Unavailable) != 0 {
		t.Fatalf("scan incomplete: %v", scanResp.Unavailable)
	}
	if len(scanResp.Records) != len(queryResp.Records) {
		t.Fatalf("scan returned %d records, full-box query %d", len(scanResp.Records), len(queryResp.Records))
	}
	for i := range scanResp.Records {
		a, b := scanResp.Records[i], queryResp.Records[i]
		if a.Payload != b.Payload || len(a.Point) != len(b.Point) || a.Point[0] != b.Point[0] || a.Point[1] != b.Point[1] {
			t.Fatalf("record %d: scan %v/%d, query %v/%d", i, a.Point, a.Payload, b.Point, b.Payload)
		}
	}
}

// TestScanSubsetMatchesDecomposition: scanning exactly a box's decomposed
// intervals equals querying the box.
func TestScanSubsetMatchesDecomposition(t *testing.T) {
	svc := newTestService(t, 0)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	u := svc.Curve().Universe()
	b, err := query.NewBox(u, u.MustPoint(5, 9), u.MustPoint(40, 31))
	if err != nil {
		t.Fatal(err)
	}
	ivs := query.DecomposeBox(svc.Curve(), b)

	var scanResp, queryResp server.QueryResponse
	getJSON(t, ts.URL+"/scan?ivs="+server.FormatIntervals(ivs), &scanResp)
	getJSON(t, queryURL(ts.URL, "5,9", "40,31", ""), &queryResp)
	if len(scanResp.Records) != len(queryResp.Records) {
		t.Fatalf("scan %d records, query %d", len(scanResp.Records), len(queryResp.Records))
	}
	for i := range scanResp.Records {
		if scanResp.Records[i].Payload != queryResp.Records[i].Payload {
			t.Fatalf("record %d: payload %d vs %d", i, scanResp.Records[i].Payload, queryResp.Records[i].Payload)
		}
	}
}

// TestScanRejectsMalformedIntervals: empty, unparsable, inverted, unsorted,
// overlapping, out-of-range and oversized interval sets answer 400 before
// touching the service.
func TestScanRejectsMalformedIntervals(t *testing.T) {
	svc := newTestService(t, 0)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, bad := range []string{
		"",          // missing
		"x-y",       // unparsable
		"5-5",       // empty interval
		"9-3",       // inverted
		"8-16,0-4",  // unsorted
		"0-8,4-12",  // overlapping
		"0-1000000", // beyond the index space
		"1-2-3",     // malformed element
	} {
		resp, err := http.Get(ts.URL + "/scan?ivs=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("ivs=%q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestParseFormatIntervalsRoundTrip: the wire form survives a round trip.
func TestParseFormatIntervalsRoundTrip(t *testing.T) {
	ivs := []query.Interval{{Lo: 0, Hi: 7}, {Lo: 9, Hi: 12}, {Lo: 100, Hi: 4096}}
	got, err := server.ParseIntervals(server.FormatIntervals(ivs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ivs) {
		t.Fatalf("round trip: %v", got)
	}
	for i := range ivs {
		if got[i] != ivs[i] {
			t.Fatalf("round trip: %v != %v", got[i], ivs[i])
		}
	}
}

// TestValidateIntervals pins the shared validator the server, the service
// and the cluster router all gate on.
func TestValidateIntervals(t *testing.T) {
	const n = 64
	if err := service.ValidateIntervals([]query.Interval{{Lo: 0, Hi: 8}, {Lo: 8, Hi: 64}}, n); err != nil {
		t.Fatalf("adjacent intervals rejected: %v", err)
	}
	for _, bad := range [][]query.Interval{
		nil,
		{},
		{{Lo: 3, Hi: 3}},
		{{Lo: 9, Hi: 3}},
		{{Lo: 0, Hi: 65}},
		{{Lo: 8, Hi: 16}, {Lo: 0, Hi: 4}},
		{{Lo: 0, Hi: 8}, {Lo: 4, Hi: 12}},
	} {
		if err := service.ValidateIntervals(bad, n); err == nil {
			t.Fatalf("intervals %v accepted", bad)
		}
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
