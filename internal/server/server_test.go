package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/store"
)

// slowDevice delays every page read, turning the simulated store into one
// with real I/O latency so deadline and admission behavior is observable.
type slowDevice struct {
	inner store.PageDevice
	delay time.Duration
}

func (d slowDevice) ReadPage(id int) (store.Page, error) {
	time.Sleep(d.delay)
	return d.inner.ReadPage(id)
}

func (d slowDevice) NumPages() int { return d.inner.NumPages() }

// newTestService builds a 2-shard service over 64×64 cells / 20k records
// with pageSize 8; delay > 0 makes every leaf read cost that long.
func newTestService(t *testing.T, delay time.Duration, extra ...service.Option) *service.Service {
	t.Helper()
	u := grid.MustNew(2, 6)
	c := curve.NewHilbert(u)
	rng := rand.New(rand.NewSource(11))
	recs := make([]store.Record, 20_000)
	for i := range recs {
		recs[i] = store.Record{
			Point:   u.MustPoint(rng.Uint32()%u.Side(), rng.Uint32()%u.Side()),
			Payload: uint64(i),
		}
	}
	opts := []service.Option{service.WithShards(2), service.WithPageSize(8)}
	if delay > 0 {
		opts = append(opts, service.WithShardStoreOptions(func(int) []store.Option {
			return []store.Option{store.WithDeviceWrapper(func(d store.PageDevice) (store.PageDevice, error) {
				return slowDevice{inner: d, delay: delay}, nil
			})}
		}))
	}
	svc, err := service.New(c, recs, append(opts, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func queryURL(base string, lo, hi string, extra string) string {
	return fmt.Sprintf("%s/query?lo=%s&hi=%s%s", base, lo, hi, extra)
}

// TestQueryEndToEnd: a plain query returns the same records the service
// returns in-process, in the same order.
func TestQueryEndToEnd(t *testing.T) {
	svc := newTestService(t, 0)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	u := svc.Curve().Universe()
	box, err := query.NewBox(u, u.MustPoint(8, 8), u.MustPoint(23, 23))
	if err != nil {
		t.Fatal(err)
	}
	want, err := svc.Range(context.Background(), box)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(queryURL(ts.URL, "8,8", "23,23", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("got %d records over the wire, want %d", len(got.Records), len(want.Records))
	}
	for i, r := range got.Records {
		if r.Payload != want.Records[i].Payload {
			t.Fatalf("record %d: payload %d, want %d", i, r.Payload, want.Records[i].Payload)
		}
	}
	if !got.Complete || got.ShardsQueried < 1 {
		t.Fatalf("response meta: %+v", got)
	}

	// Malformed boxes are 400s, not 500s.
	for _, bad := range []string{
		queryURL(ts.URL, "8", "23,23", ""), // wrong dimension count
		queryURL(ts.URL, "8,8", "7,7", ""), // inverted
		queryURL(ts.URL, "8,8", "23,23", "&timeout=banana"),
		ts.URL + "/query?hi=23,23", // missing lo
	} {
		resp, err := http.Get(bad)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestDeadlinePropagation: a request-supplied timeout becomes the scan's
// deadline — the query stops mid-scan with 504 long before the unbounded
// scan would finish, and the deadline counter records it.
func TestDeadlinePropagation(t *testing.T) {
	svc := newTestService(t, 3*time.Millisecond)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The full universe touches ~2500 pages × 3ms ≈ 7.5s sequentially per
	// shard; a 50ms budget must cut it off three orders earlier.
	start := time.Now()
	resp, err := http.Get(queryURL(ts.URL, "0,0", "63,63", "&timeout=50ms"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("timed-out query took %v — deadline did not propagate into the scan", elapsed)
	}
	if got := svc.Metrics().Counter("server.deadline_exceeded").Value(); got == 0 {
		t.Fatal("server.deadline_exceeded not incremented")
	}
}

// TestClientDisconnectCancelsScan: closing the client connection cancels
// the request context, which cancels the scan; the canceled counter
// records it and the inflight slot frees.
func TestClientDisconnectCancelsScan(t *testing.T) {
	svc := newTestService(t, 3*time.Millisecond)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, queryURL(ts.URL, "0,0", "63,63", ""), nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the scan start
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("client got %v, want context.Canceled", err)
	}
	reg := svc.Metrics()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("server.canceled").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server.canceled never incremented after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for reg.Counter("server.inflight").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight stuck at %d after disconnect", reg.Counter("server.inflight").Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSheddingUnderSaturation is the acceptance scenario: a burst well
// beyond the inflight bound sheds with 429 + Retry-After (shed counter
// > 0) while the requests that are served keep bounded latency — each
// started within the queue-wait budget of a slot freeing, so end-to-end
// time stays within a small multiple of one unloaded query, instead of
// growing with the whole queue.
func TestSheddingUnderSaturation(t *testing.T) {
	svc := newTestService(t, 2*time.Millisecond)
	srv, err := server.New(svc,
		server.WithMaxInflight(2),
		server.WithQueueWait(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Baseline: one unloaded query.
	lo, hi := "16,16", "39,39"
	start := time.Now()
	resp, err := http.Get(queryURL(ts.URL, lo, hi, ""))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline status %d", resp.StatusCode)
	}
	baseline := time.Since(start)

	const burst = 16
	var wg sync.WaitGroup
	type outcome struct {
		status     int
		elapsed    time.Duration
		retryAfter string
	}
	outcomes := make([]outcome, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			resp, err := http.Get(queryURL(ts.URL, lo, hi, ""))
			if err != nil {
				outcomes[i] = outcome{status: -1}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			outcomes[i] = outcome{
				status:     resp.StatusCode,
				elapsed:    time.Since(start),
				retryAfter: resp.Header.Get("Retry-After"),
			}
		}(i)
	}
	wg.Wait()

	served, shed := 0, 0
	var worstServed time.Duration
	for _, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			served++
			if o.elapsed > worstServed {
				worstServed = o.elapsed
			}
		case http.StatusTooManyRequests:
			shed++
			if o.retryAfter == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Errorf("unexpected status %d under saturation", o.status)
		}
	}
	if shed == 0 {
		t.Fatalf("saturating burst of %d over inflight limit 2 shed nothing (served %d)", burst, served)
	}
	if served == 0 {
		t.Fatal("saturating burst served nothing — shedding collapsed into total refusal")
	}
	if got := svc.Metrics().Counter("server.shed").Value(); got != int64(shed) {
		t.Fatalf("server.shed = %d, observed %d 429s", got, shed)
	}
	// Bounded tail: a served request waits at most one queue-wait budget
	// beyond the work itself (2 inflight ahead of it at most). 4× the
	// unloaded baseline plus slack is a generous ceiling that queue-length
	// proportional latency (14 × baseline here) would blow through.
	bound := 4*baseline + 500*time.Millisecond
	if worstServed > bound {
		t.Fatalf("worst served latency %v exceeds bound %v (baseline %v) — shedding is not protecting the served tail",
			worstServed, bound, baseline)
	}
	if v := svc.Metrics().Histogram("server.latency_us").Quantile(0.99); v == 0 {
		t.Fatal("server.latency_us histogram never observed")
	}
}

// TestDrainFinishesInflight: SIGTERM semantics — during drain the inflight
// request completes with its full body, new connections are refused, and
// the service is closed afterwards.
func TestDrainFinishesInflight(t *testing.T) {
	svc := newTestService(t, 2*time.Millisecond)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()

	type result struct {
		status  int
		records int
		err     error
	}
	slow := make(chan result, 1)
	go func() {
		resp, err := http.Get(queryURL(base, "0,0", "47,47", ""))
		if err != nil {
			slow <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var qr server.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			slow <- result{status: resp.StatusCode, err: err}
			return
		}
		slow <- result{status: resp.StatusCode, records: len(qr.Records)}
	}()
	time.Sleep(50 * time.Millisecond) // request is inflight

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after drain", err)
	}

	r := <-slow
	if r.err != nil || r.status != http.StatusOK {
		t.Fatalf("inflight request during drain: status %d, err %v — drain must finish inflight work", r.status, r.err)
	}
	if r.records == 0 {
		t.Fatal("inflight request returned an empty body")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
	u := svc.Curve().Universe()
	box, err := query.NewBox(u, u.MustPoint(0, 0), u.MustPoint(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Range(context.Background(), box); !errors.Is(err, service.ErrShuttingDown) {
		t.Fatalf("service not closed after drain: %v", err)
	}
	if !srv.Draining() {
		t.Fatal("Draining() false after drain")
	}
}

// TestDrainRejectsNewQueries: once draining, /readyz flips to 503 and new
// queries bounce with 503 + Retry-After while /healthz stays 200.
func TestDrainRejectsNewQueries(t *testing.T) {
	svc := newTestService(t, 0)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s before drain: %d, want %d", path, resp.StatusCode, want)
		}
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// The httptest server has its own listener, so the mux is still
	// reachable — exactly the keep-alive-connection case drain must handle
	// at the handler level.
	for path, want := range map[string]int{"/healthz": 200, "/readyz": 503} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s during drain: %d, want %d", path, resp.StatusCode, want)
		}
	}
	resp, err := http.Get(queryURL(ts.URL, "8,8", "9,9", ""))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 during drain without Retry-After")
	}
}

// TestMetricsEndpoint: text and JSON forms both serve, and the JSON form
// is valid with the server series present.
func TestMetricsEndpoint(t *testing.T) {
	svc := newTestService(t, 0)
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, err := http.Get(queryURL(ts.URL, "4,4", "11,11", "")); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/metrics JSON invalid: %v\n%s", err, body)
	}
	for _, key := range []string{"server.requests", "server.ok", "server.latency_us", "queries.total"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("/metrics JSON missing %q", key)
		}
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), "server.requests") {
		t.Fatalf("/metrics text missing server.requests:\n%s", text)
	}
}
