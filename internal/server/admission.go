package server

import (
	"context"
	"errors"
	"time"
)

// errShed is returned by acquire when the queue-wait budget elapses with
// every inflight slot still taken; the handler maps it to 429 +
// Retry-After.
var errShed = errors.New("server: overloaded")

// limiter is the daemon's admission controller: a bounded semaphore of
// inflight query slots plus a queue-wait budget. A request that cannot get
// a slot within the budget is shed — the server answers 429 immediately
// instead of stacking unbounded goroutines behind a saturated worker pool,
// so served requests keep bounded latency while excess load bounces with a
// client-visible backpressure signal.
type limiter struct {
	slots     chan struct{}
	queueWait time.Duration
}

// newLimiter builds a limiter admitting up to max concurrent holders, each
// waiting at most queueWait for a slot (queueWait <= 0 sheds immediately
// when saturated).
func newLimiter(max int, queueWait time.Duration) *limiter {
	return &limiter{slots: make(chan struct{}, max), queueWait: queueWait}
}

// acquire takes an inflight slot, waiting up to the queue-wait budget. It
// returns how long the caller queued and, on success, a non-nil slot to
// release. Failure is errShed (budget elapsed) or the context's error (the
// client gave up or timed out while queued).
func (l *limiter) acquire(ctx context.Context) (waited time.Duration, err error) {
	start := time.Now()
	select {
	case l.slots <- struct{}{}:
		return time.Since(start), nil
	default:
	}
	if l.queueWait <= 0 {
		return time.Since(start), errShed
	}
	t := time.NewTimer(l.queueWait)
	defer t.Stop()
	select {
	case l.slots <- struct{}{}:
		return time.Since(start), nil
	case <-t.C:
		return time.Since(start), errShed
	case <-ctx.Done():
		return time.Since(start), ctx.Err()
	}
}

// release returns a slot taken by a successful acquire.
func (l *limiter) release() { <-l.slots }

// inflight returns the number of slots currently held.
func (l *limiter) inflight() int { return len(l.slots) }

// capacity returns the inflight bound.
func (l *limiter) capacity() int { return cap(l.slots) }
