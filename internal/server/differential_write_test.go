package server_test

import (
	"bytes"
	"context"
	"io/fs"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/client"
	"repro/internal/curve"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/store"
)

// writeOp is one step of a deterministic write workload: a put, a delete,
// or a flush, pre-drawn so the exact same sequence can be replayed against
// two daemons.
type writeOp struct {
	kind int // 0 = put, 1 = delete, 2 = flush
	rec  store.Record
}

// randomWriteOps draws n operations over u: mostly puts (some duplicating
// an earlier record, so the multiset semantics are exercised), deletes of
// previously put records, and occasional flushes that cut memtable → run
// boundaries at deterministic points.
func randomWriteOps(rng *rand.Rand, u *grid.Universe, n int) []writeOp {
	ops := make([]writeOp, 0, n)
	var live []store.Record
	for i := 0; i < n; i++ {
		r := rng.Float64()
		switch {
		case r < 0.06:
			ops = append(ops, writeOp{kind: 2})
		case r < 0.22 && len(live) > 0:
			j := rng.Intn(len(live))
			rec := live[j]
			ops = append(ops, writeOp{kind: 1, rec: rec})
			// Delete removes every instance of (point, payload); drop them
			// all from the live set too.
			kept := live[:0]
			for _, l := range live {
				if !l.Point.Equal(rec.Point) || l.Payload != rec.Payload {
					kept = append(kept, l)
				}
			}
			live = kept
		default:
			var rec store.Record
			if len(live) > 0 && rng.Float64() < 0.15 {
				rec = live[rng.Intn(len(live))] // duplicate instance
			} else {
				p := u.NewPoint()
				for d := range p {
					p[d] = uint32(rng.Intn(int(u.Side())))
				}
				rec = store.Record{Point: p, Payload: uint64(10_000 + i)}
			}
			ops = append(ops, writeOp{kind: 0, rec: rec})
			live = append(live, rec)
		}
	}
	return ops
}

// newDurableDifferentialServer builds an empty durable daemon over dir —
// 2 shards, 32×32 cells — whose on-disk run devices are wrapped with a
// deterministic transient-fault injector (pure function of the seed and
// per-page attempt number, so two daemons built alike fault alike). It
// serves both front doors and returns a JSON client and a binary client.
func newDurableDifferentialServer(t *testing.T, dir string, seed int64) (jsonCl, binCl *client.Client, svc *service.Service, injectors func() []*faultio.Injector) {
	t.Helper()
	u := grid.MustNew(2, 5)
	c := curve.NewHilbert(u)
	var mu sync.Mutex
	var injs []*faultio.Injector
	svc, err := service.New(c, nil,
		service.WithShards(2),
		service.WithDurableDir(dir),
		service.WithDurableShardOptions(func(j int) []store.DurableOption {
			return []store.DurableOption{
				store.WithAutoCompact(false), // no background compaction racing the byte-level comparison
				store.WithRunWrapper(func(dev store.PageDevice) (store.PageDevice, error) {
					in, err := faultio.Wrap(dev, faultio.Config{
						Seed:          seed + int64(j)*1009,
						TransientProb: 0.15,
					})
					if err != nil {
						return nil, err
					}
					mu.Lock()
					injs = append(injs, in)
					mu.Unlock()
					return in, nil
				}),
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	hl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(hl)
	t.Cleanup(func() { hl.Close() })
	wireAddr := startWire(t, srv)

	jsonCl = client.New("http://" + hl.Addr().String())
	binCl = client.New("http://"+hl.Addr().String(),
		client.WithTransport(&client.BinaryTransport{Addr: wireAddr}))
	t.Cleanup(func() { jsonCl.Close(); binCl.Close() })
	snapshot := func() []*faultio.Injector {
		mu.Lock()
		defer mu.Unlock()
		return append([]*faultio.Injector(nil), injs...)
	}
	return jsonCl, binCl, svc, snapshot
}

// applyOp runs one workload step through cl and returns the server's ack.
func applyOp(ctx context.Context, cl *client.Client, op writeOp) (server.WriteResponse, error) {
	switch op.kind {
	case 0:
		return cl.Put(ctx, op.rec)
	case 1:
		return cl.Delete(ctx, op.rec)
	default:
		return cl.Flush(ctx)
	}
}

// hashDir reads every regular file under dir into a map keyed by relative
// path. Two durable directories are "bit-identical" when the maps match.
func hashDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[rel] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTransportDifferentialWrites: the binary write path is an encoding,
// not a different database. The same deterministic put/delete/flush
// workload is driven through a JSON client against one empty durable
// daemon and through the binary transport against another built alike
// (same geometry, same transient-fault schedule on the run devices). Every
// ack must agree; afterwards the two daemons must hold bit-identical
// durable state — same full-curve scan record for record, same range
// digest, and byte-for-byte identical WAL, manifest, and run files on
// disk.
func TestTransportDifferentialWrites(t *testing.T) {
	jsonDir, binDir := t.TempDir(), t.TempDir()
	jsonCl, _, jsonSvc, jsonInjs := newDurableDifferentialServer(t, jsonDir, 99)
	_, binCl, binSvc, binInjs := newDurableDifferentialServer(t, binDir, 99)

	u := grid.MustNew(2, 5)
	ops := randomWriteOps(rand.New(rand.NewSource(31)), u, 240)
	ctx := context.Background()

	puts, deletes := 0, 0
	for i, op := range ops {
		ja, jerr := applyOp(ctx, jsonCl, op)
		ba, berr := applyOp(ctx, binCl, op)
		if jerr != nil || berr != nil {
			t.Fatalf("op %d (%+v): json err %v, binary err %v", i, op, jerr, berr)
		}
		if ja != ba {
			t.Fatalf("op %d (%+v): acks disagree: json %+v, binary %+v", i, op, ja, ba)
		}
		if !ja.OK || ja.Acked != 1 || ja.Required != 1 {
			t.Fatalf("op %d: standalone daemon ack %+v, want OK acked 1/1", i, ja)
		}
		switch op.kind {
		case 0:
			puts++
		case 1:
			deletes++
		}
	}
	if puts == 0 || deletes == 0 {
		t.Fatalf("workload drew %d puts and %d deletes: differential is vacuous", puts, deletes)
	}

	// Persist everything, then compare the three views of the state.
	for _, cl := range []*client.Client{jsonCl, binCl} {
		if ack, err := cl.Flush(ctx); err != nil || !ack.OK {
			t.Fatalf("final flush: %v (%+v)", err, ack)
		}
	}

	full := []query.Interval{{Lo: 0, Hi: u.N()}}
	jr, err := jsonCl.ScanIntervals(ctx, full)
	if err != nil {
		t.Fatalf("json full scan: %v", err)
	}
	br, err := binCl.ScanIntervals(ctx, full)
	if err != nil {
		t.Fatalf("binary full scan: %v", err)
	}
	if !jr.Complete || !br.Complete {
		t.Fatalf("full scans degraded (json %v, binary %v): transient faults exhausted retries", jr.Complete, br.Complete)
	}
	if err := diffResponses(jr, br); err != nil {
		t.Fatalf("after identical write workloads the daemons disagree: %v", err)
	}

	jd, err := jsonCl.Digest(ctx, full)
	if err != nil {
		t.Fatalf("json digest: %v", err)
	}
	bd, err := binCl.Digest(ctx, full)
	if err != nil {
		t.Fatalf("binary digest: %v", err)
	}
	if jd.Count != bd.Count || jd.Sum != bd.Sum {
		t.Fatalf("digests disagree: json {count %d sum %x}, binary {count %d sum %x}", jd.Count, jd.Sum, bd.Count, bd.Sum)
	}

	// Guard against a vacuous fault schedule: the injectors must have fired.
	var transients uint64
	for _, in := range append(jsonInjs(), binInjs()...) {
		transients += in.Counters().Transients
	}
	if transients == 0 {
		t.Fatal("no transient faults injected: the differential ran against clean devices")
	}

	// Bit-identical durable state: close both daemons and compare the
	// directories byte for byte.
	if err := jsonSvc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := binSvc.Close(); err != nil {
		t.Fatal(err)
	}
	jf, bf := hashDir(t, jsonDir), hashDir(t, binDir)
	if len(jf) == 0 {
		t.Fatal("durable directory is empty after the workload")
	}
	for rel, jb := range jf {
		bb, ok := bf[rel]
		if !ok {
			t.Fatalf("file %s exists only under the JSON daemon", rel)
		}
		if !bytes.Equal(jb, bb) {
			t.Fatalf("file %s differs between the daemons (%d vs %d bytes)", rel, len(jb), len(bb))
		}
	}
	for rel := range bf {
		if _, ok := jf[rel]; !ok {
			t.Fatalf("file %s exists only under the binary daemon", rel)
		}
	}
}
