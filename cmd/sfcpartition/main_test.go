package main

import (
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
)

func TestWorkloadKinds(t *testing.T) {
	u := grid.MustNew(2, 3)
	z := curve.NewZ(u)
	if w, err := workload(z, "uniform"); err != nil || w != nil {
		t.Fatalf("uniform workload: %v %v", w, err)
	}
	for _, kind := range []string{"gradient", "hotspot"} {
		w, err := workload(z, kind)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for pos := uint64(0); pos < u.N(); pos++ {
			v := w(pos)
			if v <= 0 {
				t.Fatalf("%s weight %v at %d", kind, v, pos)
			}
			total += v
		}
		if total <= 0 {
			t.Fatalf("%s total %v", kind, total)
		}
	}
	if _, err := workload(z, "nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestGradientGrowsAlongDim1(t *testing.T) {
	u := grid.MustNew(2, 3)
	s := curve.NewSimple(u)
	w, err := workload(s, "gradient")
	if err != nil {
		t.Fatal(err)
	}
	// Simple curve position 0 is (0,0), position 7 is (7,0).
	if !(w(7) > w(0)) {
		t.Fatal("gradient not increasing along dimension 1")
	}
}
