// Command sfcpartition compares SFC-based domain decompositions: it
// partitions a universe into p contiguous curve segments under a chosen
// workload and reports load imbalance, edge cut and communication surface
// for each curve.
//
// Usage:
//
//	sfcpartition -d 2 -k 7 -parts 16
//	sfcpartition -d 3 -k 4 -parts 8 -weight hotspot
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/partition"
)

func main() {
	var (
		d       = flag.Int("d", 2, "dimensions")
		k       = flag.Int("k", 7, "log2 side length")
		parts   = flag.Int("parts", 16, "number of processors")
		weight  = flag.String("weight", "uniform", "workload: uniform, gradient or hotspot")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "seed for randomized curves")
	)
	flag.Parse()

	u, err := grid.New(*d, *k)
	if err != nil {
		fail(err)
	}

	fmt.Printf("universe=%v parts=%d weight=%s\n", u, *parts, *weight)
	fmt.Printf("%-8s  %-10s  %-10s  %-12s\n", "curve", "imbalance", "edge cut", "max surface")
	for _, name := range curve.Names() {
		c, err := curve.ByName(name, u, *seed)
		if err != nil {
			fail(err)
		}
		w, err := workload(c, *weight)
		if err != nil {
			fail(err)
		}
		pt, err := partition.Weighted(c, *parts, w)
		if err != nil {
			fail(err)
		}
		q := pt.Evaluate(w, *workers)
		fmt.Printf("%-8s  %-10.4f  %-10d  %-12d\n", name, q.Imbalance, q.EdgeCut, q.MaxSurface)
	}
}

// workload builds the weight function over curve positions. Weights are
// defined spatially (per cell) and looked up through the curve's inverse so
// every curve sees the same physical load.
func workload(c curve.Curve, kind string) (partition.Weight, error) {
	u := c.Universe()
	switch kind {
	case "uniform":
		return nil, nil
	case "gradient":
		// Load grows linearly along dimension 1 — e.g. a sharpening shock
		// front in an adaptive mesh.
		p := u.NewPoint()
		return func(pos uint64) float64 {
			c.Point(pos, p)
			return 1 + float64(p[0])
		}, nil
	case "hotspot":
		// Gaussian hotspot at the domain center — e.g. a particle cluster.
		p := u.NewPoint()
		center := float64(u.Side()) / 2
		sigma := float64(u.Side()) / 8
		return func(pos uint64) float64 {
			c.Point(pos, p)
			var r2 float64
			for i := 0; i < u.D(); i++ {
				dd := float64(p[i]) - center
				r2 += dd * dd
			}
			return 0.05 + math.Exp(-r2/(2*sigma*sigma))
		}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q (want uniform, gradient or hotspot)", kind)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sfcpartition:", err)
	os.Exit(1)
}
