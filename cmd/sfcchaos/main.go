// Command sfcchaos runs randomized seeded fault schedules against the
// store and partition substrates and checks the resilience invariants:
//
//  1. no record silently lost or duplicated by degraded range queries;
//  2. degraded results + unavailable curve intervals exactly tile each
//     query box;
//  3. per-page checksums detect 100% of injected bit corruption;
//  4. failure-driven rebalancing conserves cell ownership, with migration
//     equal to the cells the dead parts owned (plus measured slack for the
//     load-aware variant);
//  5. the durable write path recovers exactly its acknowledged operations
//     after seeded kills, torn writes, and fsync failures, truncating torn
//     WAL tails and preserving degraded tiling across restart.
//
// Every run is reproducible from the seed, the run index, and the campaign.
//
// Usage:
//
//	sfcchaos -seed 1 -runs 100
//	sfcchaos -seed 7 -runs 500 -queries 8 -v
//	sfcchaos -campaign crash -runs 50 -artifacts /tmp/chaos-artifacts
//	sfcchaos -campaign cluster -runs 5 -serverbin ./sfcserved
//
// The cluster campaign spawns real sfcserved member processes (6),
// SIGKILLs and restarts them mid-replay, and checks the distributed
// invariants over the wire; it is excluded from -campaign all. Without
// -serverbin it builds the daemon into a temp directory first.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/chaos"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "campaign seed")
		runs      = flag.Int("runs", 100, "randomized runs")
		queries   = flag.Int("queries", 4, "degraded queries per run")
		campaign  = flag.String("campaign", "all", "campaign: all, store, partition, crash, cluster")
		artifacts = flag.String("artifacts", "", "directory to copy WAL/manifest artifacts of violating crash runs into")
		serverbin = flag.String("serverbin", "", "sfcserved binary for the cluster campaign (empty = go build one)")
		verbose   = flag.Bool("v", false, "log progress")
	)
	flag.Parse()

	cfg := chaos.Config{Seed: *seed, Runs: *runs, QueriesPerRun: *queries, Campaign: *campaign, ArtifactDir: *artifacts, ServerBin: *serverbin}
	if *campaign == "cluster" && cfg.ServerBin == "" {
		dir, err := os.MkdirTemp("", "sfcchaos-bin-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfcchaos:", err)
			os.Exit(2)
		}
		defer os.RemoveAll(dir)
		bin, err := chaos.BuildServerBin(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfcchaos:", err)
			os.Exit(2)
		}
		cfg.ServerBin = bin
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	rep, err := chaos.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfcchaos:", err)
		os.Exit(2)
	}

	fmt.Printf("chaos campaign: seed=%d runs=%d campaign=%s\n", *seed, rep.Runs, *campaign)
	fmt.Printf("  store     %6d degraded queries, %d records served, %d dark intervals reported\n",
		rep.Queries, rep.RecordsServed, rep.UnavailableIntervals)
	fmt.Printf("  faults    %6d pages lost, %d transients, %d retries, %d corruptions injected / %d detected\n",
		rep.PagesLost, rep.TransientsInjected, rep.RetriesObserved, rep.CorruptionsInjected, rep.CorruptionsDetected)
	fmt.Printf("  partition %6d failover checks, %d cells migrated\n", rep.PartitionChecks, rep.CellsMigrated)
	fmt.Printf("  crash     %6d recovery checks, %d reopens, %d ops acked, %d torn tails truncated\n",
		rep.CrashChecks, rep.Recoveries, rep.OpsAcked, rep.TornTailsTruncated)
	if rep.ClusterChecks > 0 {
		fmt.Printf("  cluster   %6d runs, %d routed queries (%d degraded), %d kills, %d restarts\n",
			rep.ClusterChecks, rep.ClusterQueries, rep.ClusterDegraded, rep.NodesKilled, rep.NodesRestarted)
		fmt.Printf("  writes    %6d acked at quorum, %d refused below quorum, %d catch-up revivals\n",
			rep.ClusterWrites, rep.ClusterWriteRefused, rep.ClusterCatchUps)
	}
	if len(rep.Violations) == 0 {
		fmt.Println("  invariants: all held — zero violations")
		return
	}
	fmt.Printf("  INVARIANT VIOLATIONS: %d\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Println("   ", v)
	}
	os.Exit(1)
}
