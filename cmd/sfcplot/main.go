// Command sfcplot renders the reproduction's graphics as SVG files:
//
//   - curve drawings (the pictorial content of the paper's Figures 1, 3, 4,
//     for any registered curve), and
//   - the Theorem 2/3 convergence chart: Davg/bound versus k for the main
//     curves, showing Z and simple flattening onto the 1.5 line and Hilbert
//     onto ≈1.82 (d=2).
//
// Usage:
//
//	sfcplot -dir out               # writes curve-<name>.svg + convergence.svg
//	sfcplot -dir out -k 5 -maxn 1048576
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/svgplot"
)

func main() {
	var (
		dir     = flag.String("dir", "plots", "output directory")
		k       = flag.Int("k", 4, "log2 side for the curve drawings (2-d)")
		maxn    = flag.Uint64("maxn", 1<<18, "largest n for the convergence sweep")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "seed for randomized curves")
	)
	flag.Parse()
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fail(err)
	}

	// Curve drawings.
	u, err := grid.New(2, *k)
	if err != nil {
		fail(err)
	}
	for _, name := range curve.Names() {
		c, err := curve.ByName(name, u, *seed)
		if err != nil {
			fail(err)
		}
		cv, err := svgplot.CurvePath(c, 420)
		if err != nil {
			fail(err)
		}
		path := filepath.Join(*dir, "curve-"+name+".svg")
		if err := os.WriteFile(path, []byte(cv.String()), 0o644); err != nil {
			fail(err)
		}
		fmt.Println("wrote", path)
	}

	// Convergence chart: Davg/bound vs k, d=2.
	plot := svgplot.LinePlot{
		Title:  "Davg / Theorem-1 bound vs k (d=2) — Z and simple → 1.5",
		XLabel: "k (side = 2^k)",
		YLabel: "Davg / bound",
	}
	for _, name := range []string{"z", "simple", "hilbert", "gray"} {
		var xs, ys []float64
		for kk := 2; uint64(1)<<(2*kk) <= *maxn; kk++ {
			uu, err := grid.New(2, kk)
			if err != nil {
				fail(err)
			}
			c, err := curve.ByName(name, uu, *seed)
			if err != nil {
				fail(err)
			}
			davg := core.DAvg(c, *workers)
			xs = append(xs, float64(kk))
			ys = append(ys, davg/bounds.NNAvgLowerBound(2, kk))
		}
		plot.Series = append(plot.Series, svgplot.Series{Name: name, X: xs, Y: ys})
	}
	cv, err := plot.Render(640, 420)
	if err != nil {
		fail(err)
	}
	path := filepath.Join(*dir, "convergence.svg")
	if err := os.WriteFile(path, []byte(cv.String()), 0o644); err != nil {
		fail(err)
	}
	fmt.Println("wrote", path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sfcplot:", err)
	os.Exit(1)
}
