package main

import (
	"strings"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
)

func TestRenderKeysMatchesFigure3(t *testing.T) {
	u := grid.MustNew(2, 3)
	out := renderKeys(curve.NewZ(u))
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 9 { // header + 8 rows
		t.Fatalf("%d lines", len(lines))
	}
	// Bottom row of Figure 3: 0 2 8 10 32 34 40 42.
	bottom := strings.Fields(lines[8])
	want := []string{"0", "2", "8", "10", "32", "34", "40", "42"}
	for i, w := range want {
		if bottom[i] != w {
			t.Fatalf("bottom row %v, want %v", bottom, want)
		}
	}
}

func TestRenderPathShapes(t *testing.T) {
	u := grid.MustNew(2, 2)
	hil := renderPath(curve.NewHilbert(u))
	if strings.Contains(hil, "*") {
		t.Fatal("unit-step hilbert rendered a jump marker")
	}
	if !strings.Contains(hil, "o-o") && !strings.Contains(hil, "|") {
		t.Fatal("hilbert path missing segments")
	}
	z := renderPath(curve.NewZ(u))
	if !strings.Contains(z, "*") {
		t.Fatal("Z curve path should show jumps")
	}
}
