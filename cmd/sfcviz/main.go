// Command sfcviz renders a two-dimensional space filling curve as ASCII
// art: the key grid (the layout of Figures 3 and 4 of the paper) and the
// visiting path drawn on a character canvas.
//
// Usage:
//
//	sfcviz -curve z -k 3          # the exact grid of Figure 3
//	sfcviz -curve simple -k 3     # the exact grid of Figure 4
//	sfcviz -curve hilbert -k 4 -path
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/curve"
	"repro/internal/grid"
)

func main() {
	var (
		name = flag.String("curve", "z", fmt.Sprintf("curve name %v", curve.Names()))
		k    = flag.Int("k", 3, "log2 side length (grid is 2^k × 2^k)")
		seed = flag.Int64("seed", 1, "seed for randomized curves")
		path = flag.Bool("path", false, "draw the visiting path instead of the key grid")
	)
	flag.Parse()

	if *k > 5 && !*path {
		fail(fmt.Errorf("key grid beyond k=5 does not fit a terminal; use -path"))
	}
	if *k > 7 {
		fail(fmt.Errorf("k=%d too large to render", *k))
	}
	u, err := grid.New(2, *k)
	if err != nil {
		fail(err)
	}
	c, err := curve.ByName(*name, u, *seed)
	if err != nil {
		fail(err)
	}
	if *path {
		fmt.Print(renderPath(c))
	} else {
		fmt.Print(renderKeys(c))
	}
}

// renderKeys prints the key assignment with dimension 1 horizontal and
// dimension 2 growing upward, matching the paper's figures.
func renderKeys(c curve.Curve) string {
	u := c.Universe()
	width := len(fmt.Sprint(u.N() - 1))
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %v (keys; x1 right, x2 up)\n", c.Name(), u)
	for y := int(u.Side()) - 1; y >= 0; y-- {
		for x := uint32(0); x < u.Side(); x++ {
			fmt.Fprintf(&b, "%*d ", width, c.Index(u.MustPoint(x, uint32(y))))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// renderPath draws the visiting order on a (2·side−1)² canvas: cells are
// "o", consecutive visits are connected by - and | segments; diagonal moves
// (the Z curve's jumps) are marked with *.
func renderPath(c curve.Curve) string {
	u := c.Universe()
	side := int(u.Side())
	dim := 2*side - 1
	canvas := make([][]byte, dim)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", dim))
	}
	p := u.NewPoint()
	q := u.NewPoint()
	c.Point(0, p)
	canvas[2*int(p[1])][2*int(p[0])] = 'o'
	for idx := uint64(1); idx < u.N(); idx++ {
		c.Point(idx, q)
		canvas[2*int(q[1])][2*int(q[0])] = 'o'
		dx := int(q[0]) - int(p[0])
		dy := int(q[1]) - int(p[1])
		switch {
		case dy == 0 && (dx == 1 || dx == -1):
			canvas[2*int(p[1])][2*int(p[0])+dx] = '-'
		case dx == 0 && (dy == 1 || dy == -1):
			canvas[2*int(p[1])+dy][2*int(p[0])] = '|'
		default:
			// Non-unit step: mark the midpoint so self-intersections and
			// jumps (Z, Gray, random) are visible.
			my := int(p[1]) + int(q[1])
			mx := int(p[0]) + int(q[0])
			canvas[my][mx] = '*'
		}
		copy(p, q)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %v (path; start at key 0)\n", c.Name(), u)
	for y := dim - 1; y >= 0; y-- { // x2 grows upward
		b.Write(canvas[y])
		b.WriteByte('\n')
	}
	return b.String()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sfcviz:", err)
	os.Exit(1)
}
