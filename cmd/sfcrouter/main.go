// Command sfcrouter is the cluster query router: it fronts N sfcserved
// members (each started with -cluster-nodes/-cluster-node so all sides
// derive the same placement plan from -curve/-d/-k/-seed), decomposes each
// box query into curve intervals, clips them to per-node ownership,
// scatter-gathers over the members with per-node deadlines and hedged
// fallback to replicas, and merges the answers in curve order. Member
// failures surface as exact dark intervals in the response — degraded,
// never silently incomplete — and a background prober revives members that
// come back. See docs/CLUSTER.md.
//
// The /query endpoint is wire-compatible with sfcserved's, so existing
// clients (internal/client, cmd/sfcserve -remote) work against a router
// unchanged. /topology reports the live ownership ledger.
//
// With -write-quorum W ≥ 1 the router also fronts the members' durable
// write path: POST /put, /delete and /flush fan each write out to every
// live replica of the owning segment and acknowledge once W members have
// applied it durably; replicas that were dead are recorded as misses and
// reconciled by anti-entropy catch-up before the prober revives them.
// Members must have been started with -data. Without the flag the router
// is read-only, exactly as before.
//
// Scatter legs upgrade to the binary wire protocol per member: with
// -wire auto (the default) the router probes each member's /wireinfo at
// startup and speaks binary (internal/wire) to members that advertise a
// wire listener, JSON to the rest; -wire json pins every leg to JSON. The
// startup banner lists the transport chosen for each member.
//
// Usage:
//
//	sfcrouter -addr 127.0.0.1:7170 \
//	  -nodes http://127.0.0.1:7181,http://127.0.0.1:7182,http://127.0.0.1:7183 \
//	  -replicas 2 -curve hilbert -d 2 -k 6 -seed 1
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/store"
	wiretext "repro/internal/wire/text"
)

type config struct {
	addr      string
	nodes     string
	replicas  int
	curveName string
	d, k      int
	seed      int64

	nodeTimeout   time.Duration
	hedgeDelay    time.Duration
	probeInterval time.Duration
	maxTimeout    time.Duration
	drainTimeout  time.Duration
	wireMode      string
	writeQuorum   int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7170", "listen address")
	flag.StringVar(&cfg.nodes, "nodes", "", "comma-separated member base URLs, in node-index order (required)")
	flag.IntVar(&cfg.replicas, "replicas", 2, "replication factor R the members were started with")
	flag.StringVar(&cfg.curveName, "curve", "hilbert", fmt.Sprintf("curve name %v", curve.Names()))
	flag.IntVar(&cfg.d, "d", 2, "dimensions")
	flag.IntVar(&cfg.k, "k", 6, "log2 side length (n = 2^(d·k) cells)")
	flag.Int64Var(&cfg.seed, "seed", 1, "placement seed — must match the members'")
	flag.DurationVar(&cfg.nodeTimeout, "node-timeout", 2*time.Second, "per-member request deadline")
	flag.DurationVar(&cfg.hedgeDelay, "hedge-delay", 50*time.Millisecond, "wait before racing the next replica (0 = failover only)")
	flag.DurationVar(&cfg.probeInterval, "probe-interval", time.Second, "how often dead members are probed for revival (0 = never)")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", server.DefaultMaxTimeout, "cap on the per-request ?timeout parameter")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "how long a drain waits for inflight queries")
	flag.StringVar(&cfg.wireMode, "wire", "auto", "scatter-leg transport: auto (binary when a member advertises /wireinfo, JSON otherwise) or json")
	flag.IntVar(&cfg.writeQuorum, "write-quorum", 0, "replicas that must durably apply a write before it is acknowledged (0 = read-only router)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sfcrouter:", err)
		os.Exit(1)
	}
}

// run builds the router, binds the listener, reports the bound address via
// ready (tests listen on :0), and serves until ctx is canceled — then
// drains. A clean drain returns nil.
func run(ctx context.Context, cfg config, ready func(addr string), w io.Writer) error {
	urls := splitNodes(cfg.nodes)
	if len(urls) == 0 {
		return errors.New("-nodes is required (comma-separated member URLs)")
	}
	u, err := grid.New(cfg.d, cfg.k)
	if err != nil {
		return err
	}
	c, err := curve.ByName(cfg.curveName, u, cfg.seed)
	if err != nil {
		return err
	}
	topo, err := cluster.NewTopology(c, len(urls), cfg.replicas)
	if err != nil {
		return err
	}
	if cfg.wireMode != "auto" && cfg.wireMode != "json" {
		return fmt.Errorf("-wire %q: want auto or json", cfg.wireMode)
	}
	nodes := make([]cluster.Node, len(urls))
	transports := make([]string, len(urls))
	for i, nu := range urls {
		// Each member gets its own client, hence its own retry budget; the
		// policy is kept snappy so failover to a replica beats a long local
		// retry dance.
		opts := []client.Option{client.WithRetryPolicy(client.RetryPolicy{
			MaxAttempts: 2,
			BaseBackoff: 10 * time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
		})}
		transports[i] = "json"
		var nodeOpts []cluster.ClientNodeOption
		if cfg.wireMode == "auto" {
			// Per-node upgrade with per-node fallback: a member that does
			// not advertise a wire listener (older build, flag unset) is
			// spoken to over JSON; the rest get the binary transport. A
			// member advertising a wire listener WITHOUT the write
			// capability (an older read-only-wire build) still upgrades its
			// reads, but writes degrade gracefully to a JSON side client —
			// sending it TPut frames would only get the connection dropped.
			dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			info, found, err := client.New(nu).WireInfo(dctx)
			cancel()
			if err == nil && found && info.Addr != "" {
				opts = append(opts, client.WithTransport(&client.BinaryTransport{Addr: info.Addr}))
				transports[i] = "binary:" + info.Addr
				if cfg.writeQuorum >= 1 && !info.Write {
					nodeOpts = append(nodeOpts, cluster.WithNodeWriteClient(client.New(nu)))
					transports[i] += "+json-writes"
				}
			}
		}
		nodes[i] = cluster.NewClientNode(client.New(nu, opts...), nodeOpts...)
	}
	reg := metrics.NewRegistry()
	rt, err := cluster.NewRouter(topo, nodes,
		cluster.WithNodeTimeout(cfg.nodeTimeout),
		cluster.WithHedgeDelay(cfg.hedgeDelay),
		cluster.WithWriteQuorum(cfg.writeQuorum),
		cluster.WithRouterMetrics(reg))
	if err != nil {
		return err
	}

	h := &routerHTTP{rt: rt, u: u, reg: reg, maxTimeout: cfg.maxTimeout}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", h.handleQuery)
	mux.HandleFunc("/scan", h.handleScan)
	mux.HandleFunc("/put", h.handlePut)
	mux.HandleFunc("/delete", h.handleDelete)
	mux.HandleFunc("/flush", h.handleFlush)
	mux.HandleFunc("/topology", h.handleTopology)
	mux.HandleFunc("/metrics", h.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusOK) })
	mux.HandleFunc("/readyz", h.handleReadyz)

	l, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "sfcrouter: routing curve=%s universe=%v nodes=%d replicas=%d write-quorum=%d transports=%s on %s\n",
		c.Name(), u, len(urls), cfg.replicas, cfg.writeQuorum, strings.Join(transports, ","), l.Addr())
	if ready != nil {
		ready(l.Addr().String())
	}

	if cfg.probeInterval > 0 {
		go func() {
			t := time.NewTicker(cfg.probeInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					pctx, cancel := context.WithTimeout(ctx, cfg.probeInterval)
					rt.Probe(pctx)
					cancel()
				}
			}
		}()
	}

	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	fmt.Fprintf(w, "sfcrouter: signal received, draining (up to %v)\n", cfg.drainTimeout)
	h.draining.Store(true)
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintln(w, "sfcrouter: drained cleanly")
	return nil
}

// splitNodes parses the -nodes flag, dropping empty elements.
func splitNodes(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// routerHTTP is the router daemon's HTTP surface.
type routerHTTP struct {
	rt         *cluster.Router
	u          *grid.Universe
	reg        *metrics.Registry
	maxTimeout time.Duration
	draining   atomic.Bool
}

// handleQuery answers box queries in sfcserved's wire format: decompose on
// the router, scatter across the cluster, merge.
func (h *routerHTTP) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	lo, err := wiretext.ParsePoint(q.Get("lo"), h.u.D())
	if err != nil {
		h.fail(w, http.StatusBadRequest, err)
		return
	}
	hi, err := wiretext.ParsePoint(q.Get("hi"), h.u.D())
	if err != nil {
		h.fail(w, http.StatusBadRequest, err)
		return
	}
	b, err := query.NewBox(h.u, lo, hi)
	if err != nil {
		h.fail(w, http.StatusBadRequest, err)
		return
	}
	h.serve(w, r, func(ctx context.Context) (cluster.Result, error) {
		return h.rt.Query(ctx, b)
	})
}

// handleScan answers raw interval scans, mirroring sfcserved's /scan.
func (h *routerHTTP) handleScan(w http.ResponseWriter, r *http.Request) {
	ivs, err := wiretext.ParseIntervals(r.URL.Query().Get("ivs"))
	if err != nil {
		h.fail(w, http.StatusBadRequest, err)
		return
	}
	h.serve(w, r, func(ctx context.Context) (cluster.Result, error) {
		return h.rt.Scan(ctx, ivs)
	})
}

// serve runs one routed query with the request's deadline applied and
// renders the result in the daemon's wire format (NodesQueried riding in
// the shards_queried field).
func (h *routerHTTP) serve(w http.ResponseWriter, r *http.Request, do func(context.Context) (cluster.Result, error)) {
	if h.draining.Load() {
		h.fail(w, http.StatusServiceUnavailable, errors.New("router draining"))
		return
	}
	ctx := r.Context()
	if t := r.URL.Query().Get("timeout"); t != "" {
		d, err := time.ParseDuration(t)
		if err != nil || d <= 0 {
			h.fail(w, http.StatusBadRequest, fmt.Errorf("bad timeout %q", t))
			return
		}
		if d > h.maxTimeout {
			d = h.maxTimeout
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	start := time.Now()
	res, err := do(ctx)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			h.fail(w, http.StatusGatewayTimeout, err)
		case errors.Is(err, context.Canceled):
			h.fail(w, 499, err) // client closed request
		default:
			h.fail(w, http.StatusBadRequest, err)
		}
		return
	}
	out := server.QueryResponse{
		Records:       make([]server.WireRecord, len(res.Records)),
		ShardsQueried: res.NodesQueried,
		PagesRead:     res.PagesRead,
		Complete:      res.Complete(),
		ElapsedUS:     time.Since(start).Microseconds(),
	}
	for i, rec := range res.Records {
		out.Records[i] = server.WireRecord{Point: rec.Point, Payload: rec.Payload}
	}
	if len(res.Unavailable) > 0 {
		out.Unavailable = make([]server.WireInterval, len(res.Unavailable))
		for i, iv := range res.Unavailable {
			out.Unavailable[i] = server.WireInterval{Lo: iv.Lo, Hi: iv.Hi}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handlePut routes one durable insert through the cluster's write fan-out.
func (h *routerHTTP) handlePut(w http.ResponseWriter, r *http.Request) {
	h.serveWrite(w, r, h.rt.Put)
}

// handleDelete routes one durable delete.
func (h *routerHTTP) handleDelete(w http.ResponseWriter, r *http.Request) {
	h.serveWrite(w, r, h.rt.Delete)
}

// serveWrite runs one routed write in sfcserved's /put wire format, so a
// client pointed at the router instead of a single daemon keeps working;
// the response additionally reports the replica fan-out (acked, required,
// missed).
func (h *routerHTTP) serveWrite(w http.ResponseWriter, r *http.Request, do func(context.Context, store.Record) (cluster.WriteResult, error)) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		h.fail(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if h.draining.Load() {
		h.fail(w, http.StatusServiceUnavailable, errors.New("router draining"))
		return
	}
	var req server.WriteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		h.fail(w, http.StatusBadRequest, fmt.Errorf("body: %w", err))
		return
	}
	res, err := do(r.Context(), store.Record{Point: req.Point, Payload: req.Payload})
	if err != nil {
		h.failWrite(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(server.WriteResponse{
		OK: true, Acked: res.Acked, Required: res.Required, Missed: res.Missed,
	})
}

// handleFlush asks every live member to persist its memtables.
func (h *routerHTTP) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		h.fail(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if h.draining.Load() {
		h.fail(w, http.StatusServiceUnavailable, errors.New("router draining"))
		return
	}
	if err := h.rt.Flush(r.Context()); err != nil {
		h.failWrite(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(server.WriteResponse{OK: true})
}

// failWrite maps a routed-write failure onto the daemon's status-code
// contract: 403 read-only, 503 quorum unreachable (retryable — replicas may
// revive), 504 deadline, 400 everything else.
func (h *routerHTTP) failWrite(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, cluster.ErrRouterReadOnly):
		h.fail(w, http.StatusForbidden, err)
	case errors.Is(err, cluster.ErrWriteQuorum):
		w.Header().Set("Retry-After", "1")
		h.fail(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		h.fail(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		h.fail(w, 499, err)
	default:
		h.fail(w, http.StatusBadRequest, err)
	}
}

// topologyResponse is the /topology body: the per-node ownership snapshot
// plus whether the ledger still tiles the curve exactly.
type topologyResponse struct {
	Nodes     []cluster.NodeStatus `json:"nodes"`
	Conserved bool                 `json:"conserved"`
	Error     string               `json:"error,omitempty"`
}

func (h *routerHTTP) handleTopology(w http.ResponseWriter, r *http.Request) {
	resp := topologyResponse{Nodes: h.rt.Snapshot()}
	if err := h.rt.Conserved(); err != nil {
		resp.Error = err.Error()
	} else {
		resp.Conserved = true
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (h *routerHTTP) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, h.reg.JSON())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, h.reg.Report())
}

// fail writes the daemon's JSON error shape.
func (h *routerHTTP) fail(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(server.ErrorResponse{Error: err.Error()})
}

// handleReadyz is ready while not draining; a fully dark cluster still
// answers ready (queries degrade to dark intervals rather than failing).
func (h *routerHTTP) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if h.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
}
