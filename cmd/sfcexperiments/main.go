// Command sfcexperiments regenerates every table of the reproduction: the
// paper's figures, lemmas, theorems and propositions, plus the extension
// experiments (see DESIGN.md for the index). It exits non-zero if any paper
// claim fails to verify.
//
// Usage:
//
//	sfcexperiments [-only thm1,thm2] [-format text|markdown|csv|json]
//	               [-quick] [-workers N] [-seed S] [-maxn N] [-maxpairs N]
//	               [-list] [-out dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		only     = flag.String("only", "", "comma-separated experiment ids (default: all)")
		format   = flag.String("format", "text", "output format: text, markdown, csv or json")
		quick    = flag.Bool("quick", false, "reduced sweep sizes for a fast smoke run")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed     = flag.Int64("seed", 0, "override the experiment seed (0 = default)")
		maxn     = flag.Uint64("maxn", 0, "override the exact-sweep size cap (0 = default)")
		maxPairs = flag.Uint64("maxpairs", 0, "override the all-pairs size cap (0 = default)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		outDir   = flag.String("out", "", "also write one <id>.md and <id>.csv per experiment into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range analysis.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := analysis.DefaultConfig()
	if *quick {
		cfg = analysis.QuickConfig()
	}
	cfg.Workers = *workers
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *maxn != 0 {
		cfg.MaxExactN = *maxn
	}
	if *maxPairs != 0 {
		cfg.MaxPairsN = *maxPairs
	}

	var tables []*analysis.Table
	var err error
	if *only == "" {
		tables, err = analysis.RunAll(cfg)
	} else {
		ids := strings.Split(*only, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
		tables, err = analysis.RunSome(cfg, ids)
	}
	if *outDir != "" {
		if mkErr := os.MkdirAll(*outDir, 0o755); mkErr != nil {
			fmt.Fprintf(os.Stderr, "sfcexperiments: %v\n", mkErr)
			os.Exit(2)
		}
		for _, tbl := range tables {
			for ext, content := range map[string]string{".md": tbl.Markdown(), ".csv": tbl.CSV()} {
				path := filepath.Join(*outDir, tbl.ID+ext)
				if wErr := os.WriteFile(path, []byte(content), 0o644); wErr != nil {
					fmt.Fprintf(os.Stderr, "sfcexperiments: %v\n", wErr)
					os.Exit(2)
				}
			}
		}
	}

	// Print whatever completed before reporting failure.
	for _, tbl := range tables {
		switch *format {
		case "markdown":
			fmt.Println(tbl.Markdown())
		case "csv":
			fmt.Println(tbl.CSV())
		case "json":
			fmt.Println(tbl.JSON())
		case "text":
			fmt.Println(tbl.Text())
		default:
			fmt.Fprintf(os.Stderr, "sfcexperiments: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfcexperiments: CLAIM FAILED: %v\n", err)
		os.Exit(1)
	}
}
