// Command sfcserve replays a synthetic box-query trace against the sharded
// query service and prints its metrics report and a throughput line — the
// serving-side counterpart of sfcstretch's analytical metrics.
//
// The trace is zipf-skewed over a fixed population of random boxes, the
// access pattern the decomposition cache is built for: a hot minority of
// boxes dominates, so most queries reuse a cached decomposition.
//
// With -remote the same trace is replayed over the wire against a live
// sfcserved daemon through internal/client instead of an in-process
// service: client-side latency quantiles, throughput, and the shed rate
// (429 responses per attempt) are reported, and -maxshed turns an excessive
// shed rate into a nonzero exit for CI gates. -transport selects the
// JSON/HTTP transport, the binary wire transport (the daemon must run with
// -wire-addr), or "both" — an A/B replay of the identical trace over each
// that prints the binary-vs-JSON speedup. -writes N additionally replays N
// puts per selected transport against a durable daemon (-data) and records
// the write-throughput A/B.
//
// Usage:
//
//	sfcserve -curve hilbert -d 2 -k 6 -records 50000 -queries 10000 -shards 8
//	sfcserve -shards 8 -compare            # also run 1 shard, print speedup
//	sfcserve -json BENCH_service.json      # write the machine-readable summary
//	sfcserve -remote http://127.0.0.1:7171 -queries 2000 -maxshed 0 -json BENCH_server.json
//	sfcserve -remote http://127.0.0.1:7171 -transport both   # JSON vs binary A/B
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/profiling"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/store"
)

type config struct {
	curveName string
	d, k      int
	records   int
	queries   int
	shards    int
	workers   int
	clients   int
	cache     int
	distinct  int
	zipfS     float64
	boxSide   int
	seed      int64
	trace     string
	compare   bool
	cold      bool
	jsonPath  string

	remote    string
	transport string
	rtimeout  time.Duration
	maxShed   float64
	stream    bool
	compress  bool
	writes    int
}

func main() {
	var cfg config
	var prof profiling.Config
	prof.AddFlags(flag.CommandLine)
	flag.StringVar(&cfg.curveName, "curve", "hilbert", fmt.Sprintf("curve name %v", curve.Names()))
	flag.IntVar(&cfg.d, "d", 2, "dimensions")
	flag.IntVar(&cfg.k, "k", 6, "log2 side length (n = 2^(d·k) cells)")
	flag.IntVar(&cfg.records, "records", 50_000, "records bulkloaded into the shards")
	flag.IntVar(&cfg.queries, "queries", 10_000, "queries replayed")
	flag.IntVar(&cfg.shards, "shards", 8, "store shards")
	flag.IntVar(&cfg.workers, "workers", 0, "service worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.clients, "clients", 4, "concurrent client goroutines")
	flag.IntVar(&cfg.cache, "cache", 0, "decomposition cache entries (0 = default, negative = off)")
	var cacheSize int
	flag.IntVar(&cacheSize, "cachesize", 0, "decomposition cache entries, 0 = disabled (cold scans); overrides -cache when given")
	flag.BoolVar(&cfg.cold, "cold", false, "also replay with the cache disabled and record warm + cold sections")
	flag.IntVar(&cfg.distinct, "distinct", 512, "distinct boxes in the trace population")
	flag.Float64Var(&cfg.zipfS, "zipf", 1.2, "zipf exponent of the box popularity (s > 1)")
	flag.IntVar(&cfg.boxSide, "box", 12, "maximum box side length in cells")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for records, boxes, and the trace")
	flag.StringVar(&cfg.trace, "trace", "synthetic", "trace kind (only \"synthetic\")")
	flag.BoolVar(&cfg.compare, "compare", false, "also replay against 1 shard and print the speedup")
	flag.StringVar(&cfg.jsonPath, "json", "", "write a JSON summary to this file")
	flag.StringVar(&cfg.remote, "remote", "", "replay against a live sfcserved daemon at this base URL instead of in-process")
	flag.StringVar(&cfg.transport, "transport", "json", "remote replay transport: json, binary (needs the daemon's -wire-addr), or both (A/B, prints the speedup)")
	flag.DurationVar(&cfg.rtimeout, "rtimeout", 0, "per-request ?timeout sent to the remote daemon (0 = none)")
	flag.Float64Var(&cfg.maxShed, "maxshed", 1, "fail (exit nonzero) if the remote shed rate exceeds this fraction")
	flag.BoolVar(&cfg.stream, "stream", false, "remote: also replay through the streaming surface, recording time-to-first-batch (binary transport)")
	flag.BoolVar(&cfg.compress, "compress", false, "remote: with -stream, also replay with per-frame compression negotiated")
	flag.IntVar(&cfg.writes, "writes", 0, "remote: also replay this many puts per selected transport (the daemon must run with -data)")
	flag.Parse()
	// -cachesize is the cold-cache dial: unlike -cache, an explicit 0 means
	// "no cache at all", so every query pays the full decomposition + scan.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "cachesize" {
			if cacheSize <= 0 {
				cfg.cache = -1
			} else {
				cfg.cache = cacheSize
			}
		}
	})

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfcserve:", err)
		os.Exit(1)
	}
	err = run(cfg, os.Stdout)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfcserve:", err)
		os.Exit(1)
	}
}

// replayResult is one trace replay's outcome.
type replayResult struct {
	Shards     int     `json:"shards"`
	Queries    int     `json:"queries"`
	Elapsed    float64 `json:"elapsed_sec"`
	Throughput float64 `json:"throughput_qps"`
	HitRate    float64 `json:"cache_hit_rate"`
	Coalesced  float64 `json:"coalesce_rate"`
	Degraded   float64 `json:"degraded_fraction"`
	PagesRead  int64   `json:"pages_leaf_read"`
}

func run(cfg config, w io.Writer) error {
	if cfg.trace != "synthetic" {
		return fmt.Errorf("unknown trace kind %q (only \"synthetic\")", cfg.trace)
	}
	if cfg.queries < 1 || cfg.clients < 1 || cfg.distinct < 1 {
		return fmt.Errorf("need positive -queries, -clients, -distinct")
	}
	if cfg.zipfS <= 1 {
		return fmt.Errorf("-zipf must be > 1")
	}
	if cfg.remote != "" {
		return runRemote(cfg, w)
	}
	u, err := grid.New(cfg.d, cfg.k)
	if err != nil {
		return err
	}
	c, err := curve.ByName(cfg.curveName, u, cfg.seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	recs := make([]store.Record, cfg.records)
	for i := range recs {
		p := u.NewPoint()
		for d := range p {
			p[d] = rng.Uint32() % u.Side()
		}
		recs[i] = store.Record{Point: p, Payload: uint64(i)}
	}
	boxes, err := syntheticBoxes(u, cfg.distinct, cfg.boxSide, rng)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "curve=%s universe=%v records=%d queries=%d distinct=%d zipf=%.2f clients=%d\n",
		c.Name(), u, cfg.records, cfg.queries, cfg.distinct, cfg.zipfS, cfg.clients)

	res, rep, err := replay(c, recs, boxes, cfg, cfg.shards, cfg.cache)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nshards=%d metrics:\n%s", cfg.shards, rep)
	fmt.Fprintf(w, "derived: cache_hit_rate=%.3f coalesce_rate=%.3f degraded_fraction=%.3f pages/query=%.1f\n",
		res.HitRate, res.Coalesced, res.Degraded, float64(res.PagesRead)/float64(res.Queries))
	fmt.Fprintf(w, "throughput: %d queries in %.3fs = %.0f queries/s (%d shards)\n",
		res.Queries, res.Elapsed, res.Throughput, cfg.shards)

	out := map[string]any{"config": cfg.public(), "sharded": res}
	if cfg.compare && cfg.shards != 1 {
		base, _, err := replay(c, recs, boxes, cfg, 1, cfg.cache)
		if err != nil {
			return err
		}
		speedup := res.Throughput / base.Throughput
		fmt.Fprintf(w, "baseline:   %d queries in %.3fs = %.0f queries/s (1 shard)\n",
			base.Queries, base.Elapsed, base.Throughput)
		fmt.Fprintf(w, "speedup: %.2fx (%d shards vs 1)\n", speedup, cfg.shards)
		out["baseline"] = base
		out["speedup"] = speedup
	}
	if cfg.cold {
		// Cold section: the cache disabled, so every query pays its full
		// decomposition and shard scans. The warm numbers above flatter the
		// sharding comparison — a ~95% hit rate means most queries never
		// touch the shards — so the cold section is where the scan-path
		// speedup actually shows.
		coldRes, _, err := replay(c, recs, boxes, cfg, cfg.shards, -1)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "cold (no cache): %d queries in %.3fs = %.0f queries/s (%d shards), pages/query=%.1f\n",
			coldRes.Queries, coldRes.Elapsed, coldRes.Throughput, cfg.shards,
			float64(coldRes.PagesRead)/float64(coldRes.Queries))
		coldOut := map[string]any{"sharded": coldRes}
		if cfg.compare && cfg.shards != 1 {
			coldBase, _, err := replay(c, recs, boxes, cfg, 1, -1)
			if err != nil {
				return err
			}
			speedup := coldRes.Throughput / coldBase.Throughput
			fmt.Fprintf(w, "cold baseline:   %d queries in %.3fs = %.0f queries/s (1 shard)\n",
				coldBase.Queries, coldBase.Elapsed, coldBase.Throughput)
			fmt.Fprintf(w, "cold speedup: %.2fx (%d shards vs 1)\n", speedup, cfg.shards)
			coldOut["baseline"] = coldBase
			coldOut["speedup"] = speedup
		}
		out["cold"] = coldOut
	}
	if cfg.jsonPath != "" {
		if err := writeJSON(cfg.jsonPath, out); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.jsonPath)
	}
	return nil
}

// public strips the non-serializable bits of the config for the JSON dump.
func (cfg config) public() map[string]any {
	return map[string]any{
		"curve": cfg.curveName, "d": cfg.d, "k": cfg.k,
		"records": cfg.records, "queries": cfg.queries,
		"shards": cfg.shards, "clients": cfg.clients,
		"distinct": cfg.distinct, "zipf": cfg.zipfS,
		"box": cfg.boxSide, "seed": cfg.seed,
		"transport": cfg.transport, "cache": cfg.cache,
		"stream": cfg.stream, "compress": cfg.compress,
		"writes": cfg.writes,
	}
}

// replay runs the full trace against a fresh service with the given shard
// count and cache capacity, returning the measured result plus the metrics
// report.
func replay(c curve.Curve, recs []store.Record, boxes []query.Box, cfg config, shards, cache int) (replayResult, string, error) {
	svc, err := service.New(c, recs, service.Config{
		Shards:    shards,
		Workers:   cfg.workers,
		CacheSize: cache,
	})
	if err != nil {
		return replayResult{}, "", err
	}
	defer svc.Close()

	ctx := context.Background()
	perClient := cfg.queries / cfg.clients
	extra := cfg.queries % cfg.clients
	var wg sync.WaitGroup
	errc := make(chan error, cfg.clients)
	start := time.Now()
	for g := 0; g < cfg.clients; g++ {
		n := perClient
		if g < extra {
			n++
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			// Per-client zipf stream, seeded distinctly but deterministically.
			lr := rand.New(rand.NewSource(cfg.seed + int64(g)*7919))
			zipf := rand.NewZipf(lr, cfg.zipfS, 1, uint64(len(boxes)-1))
			for i := 0; i < n; i++ {
				if _, err := svc.Range(ctx, boxes[zipf.Uint64()]); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(g, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	for err := range errc {
		if err != nil {
			return replayResult{}, "", err
		}
	}

	reg := svc.Metrics()
	hits := reg.Counter("cache.hits").Value()
	misses := reg.Counter("cache.misses").Value()
	shared := reg.Counter("coalesce.shared").Value()
	total := reg.Counter("queries.total").Value()
	res := replayResult{
		Shards:     shards,
		Queries:    cfg.queries,
		Elapsed:    elapsed.Seconds(),
		Throughput: float64(cfg.queries) / elapsed.Seconds(),
		PagesRead:  reg.Counter("pages.leaf_read").Value(),
	}
	if lookups := hits + misses + shared; lookups > 0 {
		res.HitRate = float64(hits) / float64(lookups)
		res.Coalesced = float64(shared) / float64(lookups)
	}
	if total > 0 {
		res.Degraded = float64(reg.Counter("queries.degraded").Value()) / float64(total)
	}
	return res, reg.Report(), nil
}

// remoteResult is one over-the-wire replay's outcome. Shed counts 429
// responses observed (including ones a retry later served); ShedRate is
// sheds per HTTP attempt; Failed counts queries whose retry budget was
// exhausted by shedding.
type remoteResult struct {
	Queries      int     `json:"queries"`
	Served       int64   `json:"served"`
	Failed       int64   `json:"failed"`
	Attempts     int64   `json:"attempts"`
	Retries      int64   `json:"retries"`
	Shed         int64   `json:"shed"`
	ShedRate     float64 `json:"shed_rate"`
	Degraded     int64   `json:"degraded"`
	DegradedRate float64 `json:"degraded_rate"`
	Elapsed      float64 `json:"elapsed_sec"`
	Throughput   float64 `json:"throughput_qps"`
	P50US        int64   `json:"p50_us"`
	P99US        int64   `json:"p99_us"`
	MaxUS        int64   `json:"max_us"`
	// Stream marks a replay consumed through the streaming surface; the
	// TTFB quantiles are then time to the first batch, while P50US/P99US
	// still measure the fully drained result. On a buffered replay TTFB
	// equals the full latency — the caller sees nothing earlier.
	Stream    bool  `json:"stream"`
	P50TTFBUS int64 `json:"p50_ttfb_us"`
	P99TTFBUS int64 `json:"p99_ttfb_us"`
	// PeakRSSKB samples the replay process's RSS high watermark (VmHWM,
	// reset per replay where the kernel allows) — the client-side
	// full-result vs streamed buffering difference.
	PeakRSSKB int64 `json:"peak_rss_kb"`
}

// runRemote replays the zipf trace over the wire against a live sfcserved
// daemon, over the JSON transport, the binary wire transport, or both
// (printing the A/B speedup). The -d/-k/-distinct/-box/-seed flags must
// describe the same universe the daemon was started with, or every query
// 400s.
func runRemote(cfg config, w io.Writer) error {
	if cfg.transport == "" {
		cfg.transport = "json"
	}
	if cfg.transport != "json" && cfg.transport != "binary" && cfg.transport != "both" {
		return fmt.Errorf("-transport %q: want json, binary, or both", cfg.transport)
	}
	u, err := grid.New(cfg.d, cfg.k)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	boxes, err := syntheticBoxes(u, cfg.distinct, cfg.boxSide, rng)
	if err != nil {
		return err
	}
	cl := client.New(cfg.remote)
	defer cl.Close()
	ctx := context.Background()
	if ok, err := cl.Readyz(ctx); err != nil {
		return fmt.Errorf("remote %s unreachable: %w", cfg.remote, err)
	} else if !ok {
		return fmt.Errorf("remote %s is not ready (draining?)", cfg.remote)
	}

	fmt.Fprintf(w, "remote=%s universe=%v queries=%d distinct=%d zipf=%.2f clients=%d transport=%s\n",
		cfg.remote, u, cfg.queries, cfg.distinct, cfg.zipfS, cfg.clients, cfg.transport)

	out := map[string]any{"config": cfg.public()}
	var all []remoteResult
	var jsonRes, binRes remoteResult
	if cfg.transport == "json" || cfg.transport == "both" {
		jsonRes, err = replayRemote(ctx, cfg, boxes, cl, "json", false, w)
		if err != nil {
			return err
		}
		out["remote"] = jsonRes
		all = append(all, jsonRes)
	}
	if cfg.transport == "binary" || cfg.transport == "both" {
		addr, err := cl.WireAddr(ctx)
		if err != nil {
			return err
		}
		if addr == "" {
			return fmt.Errorf("remote %s does not advertise a wire address (start sfcserved with -wire-addr)", cfg.remote)
		}
		bcl := client.New(cfg.remote, client.WithTransport(&client.BinaryTransport{Addr: addr}))
		defer bcl.Close()
		binRes, err = replayRemote(ctx, cfg, boxes, bcl, "binary "+addr, false, w)
		if err != nil {
			return err
		}
		out["remote_binary"] = binRes
		all = append(all, binRes)
		if cfg.stream {
			// Streamed A/B: identical trace, results consumed batch by
			// batch as the server's shard merge produces them. TTFB is the
			// headline; full-drain latency shows the (non-)regression.
			scl := client.New(cfg.remote, client.WithTransport(&client.BinaryTransport{Addr: addr}))
			defer scl.Close()
			streamRes, err := replayRemote(ctx, cfg, boxes, scl, "binary+stream", true, w)
			if err != nil {
				return err
			}
			out["remote_binary_stream"] = streamRes
			all = append(all, streamRes)
			if binRes.P50US > 0 {
				earlier := float64(binRes.P50US) / float64(streamRes.P50TTFBUS)
				fmt.Fprintf(w, "ttfb: streamed p50=%dus vs full-result p50=%dus (%.2fx earlier)\n",
					streamRes.P50TTFBUS, binRes.P50US, earlier)
				out["ttfb_speedup"] = earlier
			}
			if cfg.compress {
				ccl := client.New(cfg.remote, client.WithTransport(&client.BinaryTransport{Addr: addr, Compress: true}))
				defer ccl.Close()
				compRes, err := replayRemote(ctx, cfg, boxes, ccl, "binary+stream+deflate", true, w)
				if err != nil {
					return err
				}
				out["remote_binary_stream_compress"] = compRes
				all = append(all, compRes)
			}
		}
	}
	if cfg.transport == "both" {
		speedup := binRes.Throughput / jsonRes.Throughput
		fmt.Fprintf(w, "speedup: %.2fx (binary vs JSON)\n", speedup)
		out["speedup"] = speedup
	}

	if cfg.writes > 0 {
		if err := runRemoteWrites(ctx, cfg, u, cl, out, w); err != nil {
			return err
		}
	}

	if cfg.jsonPath != "" {
		if err := writeJSON(cfg.jsonPath, out); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.jsonPath)
	}
	for _, res := range all {
		if res.ShedRate > cfg.maxShed {
			return fmt.Errorf("shed rate %.4f exceeds -maxshed %.4f", res.ShedRate, cfg.maxShed)
		}
	}
	return nil
}

// replayRemote replays the full zipf trace through cl and reports the
// client-side view: latency quantiles, throughput, shed and degraded
// rates. Each call uses its own client so the attempt/retry/shed counters
// are per-transport. With stream set, queries go through the streaming
// surface: time-to-first-batch is observed when the first batch lands and
// the latency quantiles when the stream is fully drained.
func replayRemote(ctx context.Context, cfg config, boxes []query.Box, cl *client.Client, label string, stream bool, w io.Writer) (remoteResult, error) {
	// Exact quantiles from raw samples: the A/B columns (streamed TTFB vs
	// full-result p50) need microsecond resolution, which the registry's
	// log-bucketed histograms round away.
	var lat, ttfb samples
	resetPeakRSS()
	var served, failed, degraded atomic.Int64
	perClient := cfg.queries / cfg.clients
	extra := cfg.queries % cfg.clients
	var wg sync.WaitGroup
	errc := make(chan error, cfg.clients)
	start := time.Now()
	for g := 0; g < cfg.clients; g++ {
		n := perClient
		if g < extra {
			n++
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			// Per-client zipf stream, seeded exactly like the in-process replay.
			lr := rand.New(rand.NewSource(cfg.seed + int64(g)*7919))
			zipf := rand.NewZipf(lr, cfg.zipfS, 1, uint64(len(boxes)-1))
			for i := 0; i < n; i++ {
				t0 := time.Now()
				var complete bool
				var err error
				if stream {
					complete, err = drainStreamed(ctx, cfg, cl, boxes[zipf.Uint64()], t0, &ttfb)
				} else {
					var resp server.QueryResponse
					resp, err = cl.QueryBox(ctx, boxes[zipf.Uint64()], client.WithTimeout(cfg.rtimeout))
					complete = resp.Complete
					if err == nil {
						// Buffered: the first usable byte is the last one.
						ttfb.observe(time.Since(t0).Microseconds())
					}
				}
				switch {
				case err == nil:
					lat.observe(time.Since(t0).Microseconds())
					served.Add(1)
					// Degraded answers (dark intervals reported) count as
					// served but are tracked separately: against a cluster
					// router this is the availability story, not an error.
					if !complete {
						degraded.Add(1)
					}
				case errors.Is(err, client.ErrOverloaded):
					// Shed past the retry budget: load-test data, not fatal.
					failed.Add(1)
				default:
					errc <- err
					return
				}
			}
			errc <- nil
		}(g, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	for err := range errc {
		if err != nil {
			return remoteResult{}, err
		}
	}

	st := cl.Stats()
	res := remoteResult{
		Queries:    cfg.queries,
		Served:     served.Load(),
		Failed:     failed.Load(),
		Attempts:   st.Attempts,
		Retries:    st.Retries,
		Shed:       st.Shed,
		Degraded:   degraded.Load(),
		Elapsed:    elapsed.Seconds(),
		Throughput: float64(served.Load()) / elapsed.Seconds(),
		P50US:      lat.quantile(0.50),
		P99US:      lat.quantile(0.99),
		MaxUS:      lat.max(),
		Stream:     stream,
		P50TTFBUS:  ttfb.quantile(0.50),
		P99TTFBUS:  ttfb.quantile(0.99),
		PeakRSSKB:  peakRSSKB(),
	}
	if st.Attempts > 0 {
		res.ShedRate = float64(st.Shed) / float64(st.Attempts)
	}
	if res.Served > 0 {
		res.DegradedRate = float64(res.Degraded) / float64(res.Served)
	}
	fmt.Fprintf(w, "\n[%s] served=%d failed=%d degraded=%d attempts=%d retries=%d shed=%d shed_rate=%.4f degraded_rate=%.4f\n",
		label, res.Served, res.Failed, res.Degraded, res.Attempts, res.Retries, res.Shed, res.ShedRate, res.DegradedRate)
	fmt.Fprintf(w, "[%s] latency: p50=%dus p99=%dus max=%dus ttfb_p50=%dus ttfb_p99=%dus peak_rss=%dKB\n",
		label, res.P50US, res.P99US, res.MaxUS, res.P50TTFBUS, res.P99TTFBUS, res.PeakRSSKB)
	fmt.Fprintf(w, "[%s] throughput: %d served in %.3fs = %.0f queries/s\n",
		label, res.Served, res.Elapsed, res.Throughput)
	return res, nil
}

// writeResult is one put-replay's outcome: the write-throughput half of
// the JSON-vs-binary A/B.
type writeResult struct {
	Puts       int     `json:"puts"`
	Acked      int64   `json:"acked"`
	Failed     int64   `json:"failed"` // shed or maybe-applied past the budget
	Elapsed    float64 `json:"elapsed_sec"`
	Throughput float64 `json:"throughput_wps"`
	P50US      int64   `json:"p50_us"`
	P99US      int64   `json:"p99_us"`
	MaxUS      int64   `json:"max_us"`
}

// runRemoteWrites replays cfg.writes puts per selected transport against
// the remote daemon and records the write-throughput sections. The daemon
// must expose the durable write path (-data); payload namespaces are
// disjoint per transport so the replays never collide.
func runRemoteWrites(ctx context.Context, cfg config, u *grid.Universe, cl *client.Client, out map[string]any, w io.Writer) error {
	info, found, err := cl.WireInfo(ctx)
	if err != nil {
		return fmt.Errorf("-writes: %w", err)
	}
	if found && !info.Write {
		return fmt.Errorf("-writes: remote %s is read-only (start sfcserved with -data)", cfg.remote)
	}
	var jsonWr, binWr writeResult
	if cfg.transport == "json" || cfg.transport == "both" {
		wcl := client.New(cfg.remote)
		defer wcl.Close()
		jsonWr, err = replayRemoteWrites(ctx, cfg, u, wcl, "json+puts", 1<<41, w)
		if err != nil {
			return err
		}
		out["remote_writes"] = jsonWr
	}
	if cfg.transport == "binary" || cfg.transport == "both" {
		addr, err := cl.WireAddr(ctx)
		if err != nil {
			return err
		}
		if addr == "" {
			return fmt.Errorf("-writes: remote %s does not advertise a wire address (start sfcserved with -wire-addr)", cfg.remote)
		}
		wcl := client.New(cfg.remote, client.WithTransport(&client.BinaryTransport{Addr: addr}))
		defer wcl.Close()
		binWr, err = replayRemoteWrites(ctx, cfg, u, wcl, "binary+puts", 1<<42, w)
		if err != nil {
			return err
		}
		out["remote_binary_writes"] = binWr
	}
	if cfg.transport == "both" && jsonWr.Throughput > 0 {
		speedup := binWr.Throughput / jsonWr.Throughput
		fmt.Fprintf(w, "write speedup: %.2fx (binary vs JSON puts)\n", speedup)
		out["write_speedup"] = speedup
	}
	return nil
}

// replayRemoteWrites drives cfg.writes puts at random points through cl
// with cfg.clients concurrent writers. A put is never retried after it may
// have left the client (it is not idempotent), so shed and maybe-applied
// outcomes count as failed rather than fatal; any other error aborts.
func replayRemoteWrites(ctx context.Context, cfg config, u *grid.Universe, cl *client.Client, label string, payloadBase uint64, w io.Writer) (writeResult, error) {
	var lat samples
	var acked, failed atomic.Int64
	perClient := cfg.writes / cfg.clients
	extra := cfg.writes % cfg.clients
	var wg sync.WaitGroup
	errc := make(chan error, cfg.clients)
	start := time.Now()
	for g := 0; g < cfg.clients; g++ {
		n := perClient
		if g < extra {
			n++
		}
		wg.Add(1)
		go func(g, n int) {
			defer wg.Done()
			lr := rand.New(rand.NewSource(cfg.seed + int64(g)*104729))
			for i := 0; i < n; i++ {
				p := u.NewPoint()
				for d := range p {
					p[d] = uint32(lr.Intn(int(u.Side())))
				}
				rec := store.Record{Point: p, Payload: payloadBase + uint64(g)<<24 + uint64(i)}
				t0 := time.Now()
				ack, err := cl.Put(ctx, rec, client.WithTimeout(cfg.rtimeout))
				var maybe *client.MaybeAppliedError
				switch {
				case err == nil && ack.OK:
					lat.observe(time.Since(t0).Microseconds())
					acked.Add(1)
				case errors.Is(err, client.ErrOverloaded) || errors.As(err, &maybe):
					failed.Add(1)
				default:
					errc <- fmt.Errorf("%s: put %d/%d: %w", label, g, i, err)
					return
				}
			}
			errc <- nil
		}(g, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	for err := range errc {
		if err != nil {
			return writeResult{}, err
		}
	}
	res := writeResult{
		Puts:       cfg.writes,
		Acked:      acked.Load(),
		Failed:     failed.Load(),
		Elapsed:    elapsed.Seconds(),
		Throughput: float64(acked.Load()) / elapsed.Seconds(),
		P50US:      lat.quantile(0.50),
		P99US:      lat.quantile(0.99),
		MaxUS:      lat.max(),
	}
	fmt.Fprintf(w, "\n[%s] acked=%d failed=%d\n", label, res.Acked, res.Failed)
	fmt.Fprintf(w, "[%s] latency: p50=%dus p99=%dus max=%dus\n", label, res.P50US, res.P99US, res.MaxUS)
	fmt.Fprintf(w, "[%s] throughput: %d acked in %.3fs = %.0f puts/s\n", label, res.Acked, res.Elapsed, res.Throughput)
	return res, nil
}

// samples collects raw microsecond observations for exact quantiles —
// the streamed-vs-full TTFB comparison needs more resolution than
// log-bucketed histograms give.
type samples struct {
	mu sync.Mutex
	v  []int64
}

func (s *samples) observe(us int64) {
	s.mu.Lock()
	s.v = append(s.v, us)
	s.mu.Unlock()
}

// quantile returns the exact q-quantile by nearest rank; 0 when empty.
func (s *samples) quantile(q float64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.v) == 0 {
		return 0
	}
	sort.Slice(s.v, func(i, j int) bool { return s.v[i] < s.v[j] })
	i := int(q * float64(len(s.v)-1))
	return s.v[i]
}

func (s *samples) max() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var m int64
	for _, v := range s.v {
		if v > m {
			m = v
		}
	}
	return m
}

// drainStreamed runs one box query through the streaming surface: the TTFB
// observation lands when the first batch (or an immediately empty stream)
// arrives, then the stream is drained to completion. Returns whether the
// answer was complete (no dark intervals).
func drainStreamed(ctx context.Context, cfg config, cl *client.Client, b query.Box, t0 time.Time, ttfb *samples) (bool, error) {
	st, err := cl.QueryBoxStream(ctx, b, client.WithTimeout(cfg.rtimeout))
	if err != nil {
		return false, err
	}
	defer st.Close()
	first := true
	for {
		_, err := st.Next()
		if first {
			ttfb.observe(time.Since(t0).Microseconds())
			first = false
		}
		if err == io.EOF {
			tr, _ := st.Trailer()
			return tr.Complete(), nil
		}
		if err != nil {
			return false, err
		}
	}
}

// resetPeakRSS clears the kernel's RSS high watermark so each replay
// samples its own peak; best-effort, Linux-only (clear_refs code 5).
func resetPeakRSS() {
	os.WriteFile("/proc/self/clear_refs", []byte("5"), 0)
}

// peakRSSKB reads VmHWM from /proc/self/status, in KiB; 0 when unavailable.
func peakRSSKB() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			f := strings.Fields(rest)
			if len(f) >= 1 {
				n, _ := strconv.ParseInt(f[0], 10, 64)
				return n
			}
		}
	}
	return 0
}

// syntheticBoxes builds the trace's box population: random corners, sides
// capped at maxSide cells per dimension.
func syntheticBoxes(u *grid.Universe, n, maxSide int, rng *rand.Rand) ([]query.Box, error) {
	if maxSide < 1 {
		return nil, fmt.Errorf("-box must be >= 1")
	}
	boxes := make([]query.Box, n)
	for i := range boxes {
		lo, hi := u.NewPoint(), u.NewPoint()
		for d := range lo {
			a := rng.Uint32() % u.Side()
			side := uint32(1 + rng.Intn(maxSide))
			b := a + side - 1
			if b >= u.Side() {
				b = u.Side() - 1
			}
			lo[d], hi[d] = a, b
		}
		b, err := query.NewBox(u, lo, hi)
		if err != nil {
			return nil, err
		}
		boxes[i] = b
	}
	return boxes, nil
}

// writeJSON marshals v with encoding/json and writes it to path.
func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
