package main

import (
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/store"
)

// TestRunSyntheticTrace replays a small trace end-to-end and checks the
// report prints every metric family plus the throughput line, and that the
// JSON summary round-trips.
func TestRunSyntheticTrace(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	cfg := config{
		curveName: "hilbert", d: 2, k: 5,
		records: 3000, queries: 800, shards: 4, clients: 2,
		distinct: 64, zipfS: 1.2, boxSide: 6, seed: 1,
		trace: "synthetic", compare: true, cold: true, jsonPath: jsonPath,
	}
	var sb strings.Builder
	if err := run(cfg, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"queries.total", "queries.degraded", "queries.errors", // query family
		"cache.hits", "cache.misses", "cache.evictions", // cache family
		"coalesce.leader", "coalesce.shared", // coalescing family
		"pages.leaf_read",        // page I/O family
		"shard.0.latency_us",     // per-shard latency family
		"shard.3.latency_us",     //
		"throughput:", "speedup", // summary lines
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	sharded := doc["sharded"].(map[string]any)
	if sharded["queries"].(float64) != 800 {
		t.Fatalf("summary queries = %v", sharded["queries"])
	}
	if sharded["throughput_qps"].(float64) <= 0 {
		t.Fatal("non-positive throughput in summary")
	}
	if _, ok := doc["speedup"]; !ok {
		t.Fatal("compare run missing speedup in summary")
	}
	// The cold section replays with the cache disabled: its hit rate is
	// necessarily zero and it has its own sharding comparison.
	if !strings.Contains(out, "cold speedup:") {
		t.Fatalf("report missing cold comparison:\n%s", out)
	}
	cold, ok := doc["cold"].(map[string]any)
	if !ok {
		t.Fatal("summary missing cold section")
	}
	coldSharded := cold["sharded"].(map[string]any)
	if coldSharded["cache_hit_rate"].(float64) != 0 {
		t.Fatalf("cold replay hit the cache: %v", coldSharded["cache_hit_rate"])
	}
	if _, ok := cold["speedup"]; !ok {
		t.Fatal("cold section missing speedup")
	}
}

// TestRunRemoteReplay replays the trace over the wire against an
// in-process daemon: every query is served, nothing sheds at this load, and
// the BENCH summary carries the remote block.
func TestRunRemoteReplay(t *testing.T) {
	u := grid.MustNew(2, 5)
	c, err := curve.ByName("hilbert", u, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	recs := make([]store.Record, 3000)
	for i := range recs {
		p := u.NewPoint()
		for d := range p {
			p[d] = rng.Uint32() % u.Side()
		}
		recs[i] = store.Record{Point: p, Payload: uint64(i)}
	}
	svc, err := service.New(c, recs, service.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer svc.Close()

	jsonPath := filepath.Join(t.TempDir(), "bench_server.json")
	cfg := config{
		curveName: "hilbert", d: 2, k: 5,
		queries: 400, clients: 2, distinct: 64, zipfS: 1.2, boxSide: 6, seed: 1,
		trace: "synthetic", jsonPath: jsonPath,
		remote: ts.URL, maxShed: 0,
	}
	var sb strings.Builder
	if err := run(cfg, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"served=400", "shed_rate=0.0000", "throughput:", "latency: p50="} {
		if !strings.Contains(out, want) {
			t.Fatalf("remote report missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	remote := doc["remote"].(map[string]any)
	if remote["served"].(float64) != 400 || remote["shed"].(float64) != 0 {
		t.Fatalf("remote summary: %v", remote)
	}
	if remote["throughput_qps"].(float64) <= 0 {
		t.Fatal("non-positive remote throughput")
	}
}

// TestRunRemoteStreamedReplay: -transport binary -stream -compress replays
// the trace three ways — full-result, streamed, streamed+compressed — and
// the summary carries all three blocks with TTFB quantiles.
func TestRunRemoteStreamedReplay(t *testing.T) {
	u := grid.MustNew(2, 5)
	c, err := curve.ByName("hilbert", u, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	recs := make([]store.Record, 3000)
	for i := range recs {
		p := u.NewPoint()
		for d := range p {
			p[d] = rng.Uint32() % u.Side()
		}
		recs[i] = store.Record{Point: p, Payload: uint64(i)}
	}
	svc, err := service.New(c, recs, service.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(svc)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer svc.Close()
	wl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeWire(wl)
	defer wl.Close()
	srv.AdvertiseWire(wl.Addr().String())

	jsonPath := filepath.Join(t.TempDir(), "bench_stream.json")
	cfg := config{
		curveName: "hilbert", d: 2, k: 5,
		queries: 300, clients: 2, distinct: 64, zipfS: 1.2, boxSide: 6, seed: 1,
		trace: "synthetic", jsonPath: jsonPath,
		remote: ts.URL, transport: "binary", maxShed: 0,
		stream: true, compress: true,
	}
	var sb strings.Builder
	if err := run(cfg, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"[binary+stream]", "[binary+stream+deflate]", "ttfb:", "ttfb_p50="} {
		if !strings.Contains(out, want) {
			t.Fatalf("streamed report missing %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	for _, key := range []string{"remote_binary", "remote_binary_stream", "remote_binary_stream_compress"} {
		block, ok := doc[key].(map[string]any)
		if !ok {
			t.Fatalf("summary missing %s", key)
		}
		if block["served"].(float64) != 300 || block["shed"].(float64) != 0 {
			t.Fatalf("%s: %v", key, block)
		}
	}
	if doc["remote_binary_stream"].(map[string]any)["p50_ttfb_us"].(float64) <= 0 {
		t.Fatal("streamed replay recorded no TTFB")
	}
}

// TestRunRemoteMaxShedGate: a daemon shedding everything drives the shed
// rate over -maxshed and run exits nonzero — the CI gate.
func TestRunRemoteMaxShedGate(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	cfg := config{
		curveName: "hilbert", d: 2, k: 5,
		queries: 4, clients: 1, distinct: 8, zipfS: 1.5, boxSide: 4, seed: 1,
		trace: "synthetic", remote: ts.URL, maxShed: 0,
	}
	var sb strings.Builder
	err := run(cfg, &sb)
	if err == nil || !strings.Contains(err.Error(), "shed rate") {
		t.Fatalf("err = %v, want shed-rate gate failure", err)
	}
}

// TestRunRejectsBadFlags covers the validation paths.
func TestRunRejectsBadFlags(t *testing.T) {
	base := config{
		curveName: "z", d: 2, k: 4, records: 10, queries: 10,
		shards: 1, clients: 1, distinct: 4, zipfS: 1.5, boxSide: 2,
		trace: "synthetic",
	}
	for name, mut := range map[string]func(*config){
		"trace":   func(c *config) { c.trace = "replay.log" },
		"zipf":    func(c *config) { c.zipfS = 1.0 },
		"queries": func(c *config) { c.queries = 0 },
		"curve":   func(c *config) { c.curveName = "no-such-curve" },
		"box":     func(c *config) { c.boxSide = 0 },
	} {
		cfg := base
		mut(&cfg)
		if err := run(cfg, &strings.Builder{}); err == nil {
			t.Fatalf("%s: bad config accepted", name)
		}
	}
}
