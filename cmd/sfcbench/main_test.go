package main

import (
	"encoding/json"
	"testing"
	"time"
)

// TestRunQuick drives the full sweep logic on tiny universes: every
// configured curve must produce all three ops, every self-check must pass,
// and the report must round-trip through JSON.
func TestRunQuick(t *testing.T) {
	cfg := config{
		quick:   true,
		curves:  []string{"z", "simple", "snake", "gray", "hilbert"},
		minTime: time.Microsecond, // one rep per measurement; timings are junk but checks run in full
	}
	rep, err := run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.SelfCheck != "ok" {
		t.Fatalf("SelfCheck = %q, want ok", rep.SelfCheck)
	}
	wantRows := len(cfg.curves) * len(quickCases) * 3
	if len(rep.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), wantRows)
	}
	ops := map[string]int{}
	for _, r := range rep.Rows {
		ops[r.Op]++
		if r.ScalarNsPerOp <= 0 || r.KernelNsPerOp <= 0 {
			t.Errorf("%s %s d=%d: non-positive timing %+v", r.Curve, r.Op, r.D, r)
		}
		if r.N == 0 {
			t.Errorf("%s %s: N = 0", r.Curve, r.Op)
		}
	}
	for _, op := range []string{"encode", "decode", "nnsweep"} {
		if ops[op] != len(cfg.curves)*len(quickCases) {
			t.Errorf("op %s: %d rows, want %d", op, ops[op], len(cfg.curves)*len(quickCases))
		}
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Rows) != len(rep.Rows) {
		t.Fatalf("round-trip lost rows: %d != %d", len(back.Rows), len(rep.Rows))
	}
}

// TestRunRejectsUnknownCurve pins the error path.
func TestRunRejectsUnknownCurve(t *testing.T) {
	cfg := config{quick: true, curves: []string{"nope"}, minTime: time.Microsecond}
	if _, err := run(cfg); err == nil {
		t.Fatal("run accepted an unknown curve")
	}
}
