// Command sfcbench measures the throughput of the curve-evaluation kernel
// layer against the scalar baseline: per-key encode/decode cost and the
// end-to-end nearest-neighbor stretch sweep, per curve and universe. Every
// measurement carries an embedded self-check — the kernel path must
// bit-match the scalar path on the data being timed — and the process exits
// nonzero on any disagreement, so the CI smoke job doubles as a correctness
// gate.
//
// The committed BENCH_core.json at the repository root is the output of a
// full run (-out BENCH_core.json); refresh it after kernel work and eyeball
// the speedup column (see docs/PERF.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
)

// benchCase is one (d, k) universe of the sweep.
type benchCase struct {
	D int `json:"d"`
	K int `json:"k"`
}

// fullCases include the acceptance-bar universes (z at d=2 k=10 and
// d=3 k=7); quickCases keep the CI smoke job inside a few seconds.
var (
	fullCases  = []benchCase{{2, 10}, {3, 7}}
	quickCases = []benchCase{{2, 7}, {3, 5}}
)

// Row is one benchmark measurement: the scalar and kernel cost of one
// operation, normalized per key (encode/decode) or per cell (nnsweep).
type Row struct {
	Curve         string  `json:"curve"`
	D             int     `json:"d"`
	K             int     `json:"k"`
	N             uint64  `json:"n"`
	Op            string  `json:"op"`
	ScalarNsPerOp float64 `json:"scalar_ns_per_op"`
	KernelNsPerOp float64 `json:"kernel_ns_per_op"`
	Speedup       float64 `json:"speedup"`
}

// Report is the JSON document sfcbench emits.
type Report struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Quick     bool   `json:"quick"`
	SelfCheck string `json:"self_check"` // "ok" — a run that fails never writes a report
	Rows      []Row  `json:"rows"`
}

type config struct {
	quick   bool
	curves  []string
	minTime time.Duration
	log     func(format string, args ...any)
}

func main() {
	var (
		quick   = flag.Bool("quick", false, "use the small CI smoke universes")
		out     = flag.String("out", "", "write the JSON report to this file (default stdout)")
		curvesF = flag.String("curves", "z,simple,snake,gray,hilbert", "comma-separated curves to bench")
		minTime = flag.Duration("mintime", 200*time.Millisecond, "minimum sampling time per measurement")
	)
	flag.Parse()

	cfg := config{
		quick:   *quick,
		curves:  strings.Split(*curvesF, ","),
		minTime: *minTime,
		log:     func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	}
	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfcbench: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfcbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sfcbench: %v\n", err)
		os.Exit(1)
	}
	cfg.log("wrote %s (%d rows)", *out, len(rep.Rows))
}

// run executes the sweep. It returns an error — and no report — as soon as
// any kernel result disagrees with its scalar counterpart.
func run(cfg config) (*Report, error) {
	cases := fullCases
	if cfg.quick {
		cases = quickCases
	}
	if cfg.log == nil {
		cfg.log = func(string, ...any) {}
	}
	rep := &Report{
		Tool:      "sfcbench",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     cfg.quick,
		SelfCheck: "ok",
	}
	for _, bc := range cases {
		u, err := grid.New(bc.D, bc.K)
		if err != nil {
			return nil, err
		}
		for _, name := range cfg.curves {
			name = strings.TrimSpace(name)
			c, err := curve.ByName(name, u, 1)
			if err != nil {
				return nil, err
			}
			cfg.log("bench %-8s d=%d k=%d (n=%d)", name, bc.D, bc.K, u.N())
			rows, err := benchCurve(c, cfg.minTime)
			if err != nil {
				return nil, fmt.Errorf("%s d=%d k=%d: %w", name, bc.D, bc.K, err)
			}
			rep.Rows = append(rep.Rows, rows...)
		}
	}
	return rep, nil
}

// sampleSize bounds the point block used by the encode/decode measurements.
const sampleSize = 1 << 15

func benchCurve(c curve.Curve, minTime time.Duration) ([]Row, error) {
	u := c.Universe()
	d := u.D()
	n := u.N()
	m := int(n)
	if m > sampleSize {
		m = sampleSize
	}

	// Sample points spread over the universe (stride through the Linear
	// order so boundary and interior cells both appear).
	coords := make([]uint32, m*d)
	stride := n / uint64(m)
	if stride == 0 {
		stride = 1
	}
	p := u.NewPoint()
	for i := 0; i < m; i++ {
		u.FromLinear(uint64(i)*stride%n, p)
		copy(coords[i*d:], p)
	}

	b := curve.NewBatcher(c)
	keysScalar := make([]uint64, m)
	keysKernel := make([]uint64, m)
	for i := 0; i < m; i++ {
		keysScalar[i] = c.Index(grid.Point(coords[i*d : (i+1)*d]))
	}
	b.IndexBatch(coords, keysKernel)
	for i := 0; i < m; i++ {
		if keysKernel[i] != keysScalar[i] {
			return nil, fmt.Errorf("self-check: IndexBatch[%d] = %d, scalar Index = %d", i, keysKernel[i], keysScalar[i])
		}
	}
	encScalar := measure(minTime, func() {
		for i := 0; i < m; i++ {
			keysScalar[i] = c.Index(grid.Point(coords[i*d : (i+1)*d]))
		}
	}) / float64(m)
	encKernel := measure(minTime, func() {
		b.IndexBatch(coords, keysKernel)
	}) / float64(m)

	ptsScalar := make([]uint32, m*d)
	ptsKernel := make([]uint32, m*d)
	for i := 0; i < m; i++ {
		c.Point(keysScalar[i], grid.Point(ptsScalar[i*d:(i+1)*d]))
	}
	b.PointBatch(keysScalar, ptsKernel)
	for i := range ptsScalar {
		if ptsKernel[i] != ptsScalar[i] {
			return nil, fmt.Errorf("self-check: PointBatch disagrees with scalar Point at flat offset %d", i)
		}
	}
	decScalar := measure(minTime, func() {
		for i := 0; i < m; i++ {
			c.Point(keysScalar[i], grid.Point(ptsScalar[i*d:(i+1)*d]))
		}
	}) / float64(m)
	decKernel := measure(minTime, func() {
		b.PointBatch(keysScalar, ptsKernel)
	}) / float64(m)

	// End-to-end NN stretch sweep at workers=1: the kernelized engine
	// against the same engine with the kernel hidden (the pre-kernel scalar
	// path). Results must be bit-identical.
	ref := curve.ScalarOnly(c)
	nnKernel := core.NNStretchResult(c, 1)
	nnScalar := core.NNStretchResult(ref, 1)
	if nnKernel != nnScalar {
		return nil, fmt.Errorf("self-check: kernel NN sweep %+v, scalar %+v", nnKernel, nnScalar)
	}
	sweepKernel := measure(minTime, func() {
		nnKernel = core.NNStretchResult(c, 1)
	}) / float64(n)
	sweepScalar := measure(minTime, func() {
		nnScalar = core.NNStretchResult(ref, 1)
	}) / float64(n)

	mk := func(op string, scalar, kernel float64) Row {
		return Row{
			Curve: c.Name(), D: u.D(), K: u.K(), N: n, Op: op,
			ScalarNsPerOp: scalar, KernelNsPerOp: kernel,
			Speedup: scalar / kernel,
		}
	}
	return []Row{
		mk("encode", encScalar, encKernel),
		mk("decode", decScalar, decKernel),
		mk("nnsweep", sweepScalar, sweepKernel),
	}, nil
}

// measure returns the mean wall time of f in nanoseconds, repeating it
// until minTime has been sampled.
func measure(minTime time.Duration, f func()) float64 {
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			f()
		}
		elapsed := time.Since(start)
		if elapsed >= minTime {
			return float64(elapsed.Nanoseconds()) / float64(reps)
		}
		next := reps * 16
		if elapsed > 0 {
			if scale := int(int64(minTime)/int64(elapsed)) + 1; scale < 16 {
				next = reps * scale
			}
		}
		reps = next
	}
}
