// Command sfcserved is the networked query daemon: it bulkloads a
// synthetic record set into the sharded query service and serves it over
// HTTP/JSON (internal/server) until SIGTERM/SIGINT, at which point it
// drains — stops accepting, finishes inflight queries up to the drain
// deadline — and exits 0 on a clean drain.
//
// With -wire-addr the daemon additionally serves the binary wire protocol
// (internal/wire) on a second port — pipelined requests, streamed scan
// results — sharing the HTTP mux's admission control, deadline clamps, and
// drain lifecycle. The address is advertised via GET /wireinfo so clients
// and the cluster router upgrade automatically.
//
// With -data the shards are durable: each lives under <data>/shard-<j>/
// with a write-ahead log, the synthetic records seed the directory only on
// first start, POST /put, /delete and /flush mutate the set, and a restart
// (clean or after a kill) recovers exactly the acknowledged writes.
//
// With -cluster-nodes the daemon is one member of an N-node cluster: it
// derives the shared placement plan (internal/cluster) from
// -curve/-d/-k/-seed, bulkloads only the curve ranges it holds (its home
// segment plus the R−1 predecessor segments it replicates), and serves
// them via /scan to a cluster router (cmd/sfcrouter). See docs/CLUSTER.md.
//
// Usage:
//
//	sfcserved -addr 127.0.0.1:7171 -curve hilbert -d 2 -k 6 -records 50000
//	sfcserved -addr 127.0.0.1:7171 -wire-addr 127.0.0.1:7173
//	sfcserved -data /var/lib/sfc -records 50000
//	sfcserved -max-inflight 16 -queue-wait 50ms -drain-timeout 10s -pprof
//	sfcserved -addr 127.0.0.1:7181 -cluster-nodes 3 -cluster-node 0 -cluster-replicas 2
//
// Query it with cmd/sfcserve's -remote mode or any HTTP client:
//
//	curl 'http://127.0.0.1:7171/query?lo=3,4&hi=9,12&timeout=250ms'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/server"
	"repro/internal/service"
)

type config struct {
	addr      string
	wireAddr  string
	curveName string
	d, k      int
	records   int
	shards    int
	workers   int
	cache     int
	page      int
	seed      int64
	data      string

	clusterNodes    int
	clusterNode     int
	clusterReplicas int

	maxInflight  int
	queueWait    time.Duration
	timeout      time.Duration
	maxTimeout   time.Duration
	drainTimeout time.Duration
	pprof        bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7171", "listen address")
	flag.StringVar(&cfg.wireAddr, "wire-addr", "", "binary wire protocol listen address (empty = JSON only); advertised via /wireinfo")
	flag.StringVar(&cfg.curveName, "curve", "hilbert", fmt.Sprintf("curve name %v", curve.Names()))
	flag.IntVar(&cfg.d, "d", 2, "dimensions")
	flag.IntVar(&cfg.k, "k", 6, "log2 side length (n = 2^(d·k) cells)")
	flag.IntVar(&cfg.records, "records", 50_000, "records bulkloaded into the shards")
	flag.IntVar(&cfg.shards, "shards", 4, "store shards")
	flag.IntVar(&cfg.workers, "workers", 0, "service worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.cache, "cache", 0, "decomposition cache entries (0 = default, negative = off)")
	flag.IntVar(&cfg.page, "page", 0, "leaf page size in records (0 = store default)")
	flag.Int64Var(&cfg.seed, "seed", 1, "seed for the synthetic records")
	flag.StringVar(&cfg.data, "data", "", "durable data directory (empty = in-memory, read-only)")
	flag.IntVar(&cfg.clusterNodes, "cluster-nodes", 0, "cluster size N (0 = standalone; nodes derive placement from -curve/-d/-k/-seed)")
	flag.IntVar(&cfg.clusterNode, "cluster-node", 0, "this node's index in [0, cluster-nodes)")
	flag.IntVar(&cfg.clusterReplicas, "cluster-replicas", 2, "replication factor R (1 <= R <= cluster-nodes)")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "concurrent query bound (0 = 4×GOMAXPROCS)")
	flag.DurationVar(&cfg.queueWait, "queue-wait", server.DefaultQueueWait, "admission queue-wait budget before shedding with 429")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "default per-request deadline when ?timeout is absent (0 = none)")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", server.DefaultMaxTimeout, "cap on the per-request ?timeout parameter")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "how long a drain waits for inflight queries")
	flag.BoolVar(&cfg.pprof, "pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sfcserved:", err)
		os.Exit(1)
	}
}

// run builds the service, binds the listener, reports the bound address via
// ready (tests listen on :0), and serves until ctx is canceled — then
// drains. A clean drain returns nil.
func run(ctx context.Context, cfg config, ready func(addr string), w io.Writer) error {
	u, err := grid.New(cfg.d, cfg.k)
	if err != nil {
		return err
	}
	c, err := curve.ByName(cfg.curveName, u, cfg.seed)
	if err != nil {
		return err
	}
	// The synthetic record set is a pure function of (universe, seed): in
	// cluster mode every node generates the identical set and keeps only
	// its held ranges, so no seed data crosses the wire, and the chaos
	// campaign regenerates the same set in-process as its ground truth.
	recs := chaos.SyntheticRecords(u, cfg.seed, cfg.records)
	var clusterInfo string
	if cfg.clusterNodes > 0 {
		if cfg.clusterNode < 0 || cfg.clusterNode >= cfg.clusterNodes {
			return fmt.Errorf("-cluster-node %d outside [0, %d)", cfg.clusterNode, cfg.clusterNodes)
		}
		topo, err := cluster.NewTopology(c, cfg.clusterNodes, cfg.clusterReplicas)
		if err != nil {
			return err
		}
		held := recs[:0]
		for _, r := range recs {
			if topo.HoldsKey(cfg.clusterNode, c.Index(r.Point)) {
				held = append(held, r)
			}
		}
		recs = held
		clusterInfo = fmt.Sprintf(" cluster=%d/%d replicas=%d held=%d",
			cfg.clusterNode, cfg.clusterNodes, cfg.clusterReplicas, len(recs))
	}

	svcOpts := []service.Option{
		service.WithShards(cfg.shards),
		service.WithCacheSize(cfg.cache),
	}
	if cfg.data != "" {
		svcOpts = append(svcOpts, service.WithDurableDir(cfg.data))
	}
	if cfg.workers > 0 {
		svcOpts = append(svcOpts, service.WithWorkers(cfg.workers))
	}
	if cfg.page > 0 {
		svcOpts = append(svcOpts, service.WithPageSize(cfg.page))
	}
	svc, err := service.New(c, recs, svcOpts...)
	if err != nil {
		return err
	}

	srvOpts := []server.Option{
		server.WithQueueWait(cfg.queueWait),
		server.WithMaxTimeout(cfg.maxTimeout),
	}
	if cfg.maxInflight > 0 {
		srvOpts = append(srvOpts, server.WithMaxInflight(cfg.maxInflight))
	}
	if cfg.timeout > 0 {
		srvOpts = append(srvOpts, server.WithDefaultTimeout(cfg.timeout))
	}
	if cfg.pprof {
		srvOpts = append(srvOpts, server.WithPprof())
	}
	srv, err := server.New(svc, srvOpts...)
	if err != nil {
		svc.Close()
		return err
	}

	l, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		svc.Close()
		return err
	}
	var wireInfo string
	serveErr := make(chan error, 1)
	if cfg.wireAddr != "" {
		wl, err := net.Listen("tcp", cfg.wireAddr)
		if err != nil {
			l.Close()
			svc.Close()
			return err
		}
		srv.AdvertiseWire(wl.Addr().String())
		go func() {
			if err := srv.ServeWire(wl); err != nil {
				serveErr <- fmt.Errorf("wire: %w", err)
			}
		}()
		wireInfo = " wire=" + wl.Addr().String()
	}
	mode := "in-memory"
	if svc.DurableMode() {
		mode = "durable:" + cfg.data
	}
	fmt.Fprintf(w, "sfcserved: serving curve=%s universe=%v records=%d shards=%d mode=%s%s%s on %s\n",
		c.Name(), u, len(recs), cfg.shards, mode, clusterInfo, wireInfo, l.Addr())
	if ready != nil {
		ready(l.Addr().String())
	}

	go func() { serveErr <- srv.Serve(l) }()
	select {
	case err := <-serveErr:
		// The listener died without a signal; Drain still closes the service.
		srv.Drain(context.Background())
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	fmt.Fprintf(w, "sfcserved: signal received, draining (up to %v)\n", cfg.drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintln(w, "sfcserved: drained cleanly")
	return nil
}
