package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/server"
)

func testConfig() config {
	return config{
		addr:      "127.0.0.1:0",
		curveName: "hilbert",
		d:         2,
		k:         5,
		records:   2000,
		shards:    2,
		seed:      7,
		queueWait: server.DefaultQueueWait,

		maxTimeout:   server.DefaultMaxTimeout,
		drainTimeout: 10 * time.Second,
	}
}

// TestRunServesAndDrainsCleanly is the daemon lifecycle end to end: run
// binds :0, answers a query over the wire, and returns nil — the process's
// exit-0 path — once the signal context is canceled.
func TestRunServesAndDrainsCleanly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	var out strings.Builder
	go func() {
		done <- run(ctx, testConfig(), func(a string) { addrc <- a }, &out)
	}()

	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	cl := client.New("http://" + addr)
	if ok, err := cl.Readyz(context.Background()); err != nil || !ok {
		t.Fatalf("readyz: ok=%v err=%v", ok, err)
	}
	u := grid.MustNew(2, 5)
	b, err := query.NewBox(u, u.MustPoint(0, 0), u.MustPoint(31, 31))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Query(context.Background(), b, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Records) != 2000 || !resp.Complete {
		t.Fatalf("full-universe box returned %d records (complete=%v), want all 2000",
			len(resp.Records), resp.Complete)
	}

	cancel() // the SIGTERM path
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Fatalf("output missing drain confirmation:\n%s", out.String())
	}
}

// TestRunRejectsBadConfig: configuration errors surface before the
// listener binds.
func TestRunRejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.curveName = "nonesuch"
	if err := run(context.Background(), cfg, nil, io.Discard); err == nil {
		t.Fatal("unknown curve accepted")
	}
	cfg = testConfig()
	cfg.shards = -3
	if err := run(context.Background(), cfg, nil, io.Discard); err == nil {
		t.Fatal("negative shard count accepted")
	}
}

// TestRunDurableModeSurvivesRestart: with -data the daemon seeds the
// directory on first start, acknowledges writes over the wire, and a second
// start over the same directory serves the recovered set instead of
// reseeding.
func TestRunDurableModeSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.data = dir

	start := func() (string, context.CancelFunc, chan error) {
		ctx, cancel := context.WithCancel(context.Background())
		addrc := make(chan string, 1)
		done := make(chan error, 1)
		go func() { done <- run(ctx, cfg, func(a string) { addrc <- a }, io.Discard) }()
		select {
		case addr := <-addrc:
			return addr, cancel, done
		case err := <-done:
			t.Fatalf("run exited before ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never became ready")
		}
		panic("unreachable")
	}
	stop := func(cancel context.CancelFunc, done chan error) {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("drain exit: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not drain")
		}
	}

	addr, cancel, done := start()
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf(`{"point":[%d,0],"payload":%d}`, i, 90_000+i)
		resp, err := http.Post("http://"+addr+"/put", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("put %d: status %d", i, resp.StatusCode)
		}
	}
	stop(cancel, done)

	addr, cancel, done = start()
	defer stop(cancel, done)
	cl := client.New("http://" + addr)
	u := grid.MustNew(2, 5)
	b, err := query.NewBox(u, u.MustPoint(0, 0), u.MustPoint(31, 31))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Query(context.Background(), b, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Records) != 2005 {
		t.Fatalf("restarted durable daemon serves %d records, want 2000 seeded + 5 put", len(resp.Records))
	}
}
