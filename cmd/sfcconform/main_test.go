package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/curve"
)

func TestRunQuickTinySweepIsGreen(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-quick", "-d", "1,2", "-maxn", "6", "-sample", "4096"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "conformance GREEN") {
		t.Errorf("missing GREEN summary:\n%s", got)
	}
	for _, name := range curve.Names() {
		if !strings.Contains(got, name) {
			t.Errorf("matrix lacks curve %q", name)
		}
	}
	if strings.Contains(got, "FAIL") {
		t.Errorf("unexpected failures:\n%s", got)
	}
}

func TestRunWritesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "matrix.csv")
	var out, errb strings.Builder
	code := run([]string{"-quick", "-d", "1", "-maxn", "4", "-sample", "1024", "-csv", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out.String(), errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "curve,d,k,layer,check,status,detail\n") {
		t.Errorf("CSV header missing:\n%.120s", data)
	}
	if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 10 {
		t.Error("CSV suspiciously short")
	}
}

func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-d", "zero,1"},
		{"-workers", "x"},
		{"-d", "0"}, // rejected by Config.Validate
		{"-nosuchflag"},
	} {
		var out, errb strings.Builder
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
