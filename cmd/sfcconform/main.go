// Command sfcconform runs the conformance engine: every registered curve ×
// every stretch engine × invariant/differential/metamorphic check layers,
// and prints the per-curve conformance matrix. It exits nonzero iff any
// check fails, so CI can gate on it directly.
//
// Usage:
//
//	sfcconform                  # full sweep, d ∈ {1,2,3}, n ≤ 2^16
//	sfcconform -quick           # the -short budget (n ≤ 2^12)
//	sfcconform -d 2,3 -maxn 14  # custom dimensions / size cap
//	sfcconform -csv matrix.csv  # also write every check instance as CSV
//	sfcconform -failures        # list each failing instance
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/conformance"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sfcconform", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quick    = fs.Bool("quick", false, "use the quick (-short) sweep budget")
		dims     = fs.String("d", "", "comma-separated dimensions to sweep (default 1,2,3)")
		maxN     = fs.Int("maxn", 0, "log2 cap on universe size for exact sweeps (default 16; 12 with -quick)")
		pairsN   = fs.Int("pairsn", 0, "log2 cap on universe size for O(n²) all-pairs checks")
		samples  = fs.Int("sample", 0, "Monte-Carlo sample budget for convergence checks")
		seed     = fs.Int64("seed", 0, "sweep seed (random curve + samplers); 0 keeps the default")
		workers  = fs.String("workers", "", "comma-separated worker counts for determinism checks")
		zscore   = fs.Float64("z", 0, "confidence multiplier for sampler convergence")
		csvPath  = fs.String("csv", "", "write every check instance to this CSV file")
		listFail = fs.Bool("failures", false, "list each failing check instance")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := conformance.Full()
	if *quick {
		cfg = conformance.Quick()
	}
	if *dims != "" {
		ds, err := parseInts(*dims)
		if err != nil {
			fmt.Fprintln(stderr, "sfcconform: -d:", err)
			return 2
		}
		cfg.Dims = ds
	}
	if *maxN > 0 {
		cfg.MaxExactN = 1 << uint(*maxN)
	}
	if *pairsN > 0 {
		cfg.MaxPairsN = 1 << uint(*pairsN)
	}
	if *samples > 0 {
		cfg.Samples = *samples
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *workers != "" {
		ws, err := parseInts(*workers)
		if err != nil {
			fmt.Fprintln(stderr, "sfcconform: -workers:", err)
			return 2
		}
		cfg.Workers = ws
	}
	if *zscore > 0 {
		cfg.SampleZ = *zscore
	}

	rep, err := conformance.Run(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "sfcconform:", err)
		return 2
	}

	fmt.Fprint(stdout, rep.Matrix())
	fmt.Fprintln(stdout)
	if *listFail || !rep.OK() {
		for _, f := range rep.Failures() {
			fmt.Fprintf(stdout, "FAIL %s: [%s] %s: %s\n", f.Case(), f.Layer, f.Check, f.Detail)
		}
	}
	fmt.Fprintln(stdout, rep.Summary())

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(rep.CSV()), 0o644); err != nil {
			fmt.Fprintln(stderr, "sfcconform:", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s\n", *csvPath)
	}

	if !rep.OK() {
		return 1
	}
	return 0
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
