// Command sfcstretch computes the paper's stretch metrics for one curve on
// one universe.
//
// Usage:
//
//	sfcstretch -curve z -d 2 -k 8                 # NN stretch + bounds
//	sfcstretch -curve hilbert -d 3 -k 4 -allpairs # add all-pairs stretch
//	sfcstretch -curve random -d 2 -k 6 -seed 7 -sample 100000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/profiling"
)

func main() {
	var prof profiling.Config
	prof.AddFlags(flag.CommandLine)
	var (
		name     = flag.String("curve", "z", fmt.Sprintf("curve name %v", curve.Names()))
		d        = flag.Int("d", 2, "dimensions")
		k        = flag.Int("k", 6, "log2 side length (n = 2^(d·k))")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed     = flag.Int64("seed", 1, "seed for randomized curves / samplers")
		allPairs = flag.Bool("allpairs", false, "also compute the all-pairs stretch (exact when n permits)")
		samples  = flag.Int("sample", 0, "sample count for the all-pairs estimate on large universes")
		strat    = flag.Bool("stratified", false, "estimate Davg by importance-stratified sampling (works at any n)")
		profile  = flag.Bool("profile", false, "print the stretch-vs-distance profile")
		dist     = flag.Bool("dist", false, "print per-cell δavg quantiles")
		torus    = flag.Bool("torus", false, "also compute the stretch under periodic boundaries")
	)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fail(err)
		}
	}()

	u, err := grid.New(*d, *k)
	if err != nil {
		fail(err)
	}
	c, err := curve.ByName(*name, u, *seed)
	if err != nil {
		fail(err)
	}

	fmt.Printf("curve=%s universe=%v\n", c.Name(), u)
	lb := bounds.NNAvgLowerBound(*d, *k)
	asym := bounds.NNAsymptote(*d, *k)
	if *strat {
		est, err := core.StratifiedNNStretch(c, 4000, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Davg (stratified, %d samples) = %.6g\n", est.Samples, est.DAvg)
		fmt.Printf("Thm1 bound      = %.6g   (Davg/bound = %.4f)\n", lb, est.DAvg/lb)
		fmt.Printf("Z/S asymptote   = %.6g   (Davg/asym  = %.4f)\n", asym, est.DAvg/asym)
		return
	}
	nn := core.NNStretchResult(c, *workers)
	fmt.Printf("Davg            = %.6g\n", nn.DAvg)
	fmt.Printf("Dmax            = %.6g\n", nn.DMax)
	fmt.Printf("Thm1 bound      = %.6g   (Davg/bound = %.4f)\n", lb, nn.DAvg/lb)
	fmt.Printf("Z/S asymptote   = %.6g   (Davg/asym  = %.4f)\n", asym, nn.DAvg/asym)
	if *torus {
		tnn := core.NNStretchTorusResult(c, *workers)
		fmt.Printf("Davg (torus)    = %.6g   (torus/open = %.4f)\n", tnn.DAvg, tnn.DAvg/nn.DAvg)
		fmt.Printf("Dmax (torus)    = %.6g\n", tnn.DMax)
	}
	if *dist {
		dd, err := core.DeltaAvgDistribution(c, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Printf("δavg quantiles  : p50=%.6g p90=%.6g p99=%.6g max=%.6g\n", dd.P50, dd.P90, dd.P99, dd.Max)
	}
	if *profile {
		bins, err := core.StretchProfile(c, 3000, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println("stretch profile (mean Δπ/Δ by pair distance r):")
		for _, b := range bins {
			fmt.Printf("  r=%-6d %.6g  (%d pairs)\n", b.Distance, b.MeanStretch, b.Pairs)
		}
	}

	if *allPairs {
		for _, m := range []core.Metric{core.Manhattan, core.Euclidean} {
			if u.N() <= core.MaxExactPairsN && *samples == 0 {
				v, err := core.AllPairsStretch(c, m, *workers)
				if err != nil {
					fail(err)
				}
				fmt.Printf("str_avg,%-9s = %.6g (exact)\n", m, v)
			} else {
				n := *samples
				if n == 0 {
					n = 200_000
				}
				est, err := core.SampledAllPairsStretch(c, m, n, *seed)
				if err != nil {
					fail(err)
				}
				fmt.Printf("str_avg,%-9s = %.6g ± %.2g (sampled, %d pairs)\n", m, est.Mean, est.StdErr, est.Samples)
			}
		}
		fmt.Printf("Prop3 LB (M)    = %.6g\n", bounds.AllPairsManhattanLB(*d, *k))
		fmt.Printf("Prop3 LB (E)    = %.6g\n", bounds.AllPairsEuclideanLB(*d, *k))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sfcstretch:", err)
	os.Exit(1)
}
