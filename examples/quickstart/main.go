// Quickstart: build a Z curve, measure its nearest-neighbor stretch, and
// compare it with the paper's universal lower bound (Theorem 1) and
// asymptote (Theorem 2).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
)

func main() {
	// A two-dimensional universe with side 2^8 = 256 (n = 65536 cells).
	u, err := grid.New(2, 8)
	if err != nil {
		log.Fatal(err)
	}

	// The Z curve maps each cell to its bit-interleaved Morton key.
	z := curve.NewZ(u)
	p := u.MustPoint(5, 9)
	fmt.Printf("Z(%v) = %d\n", p, z.Index(p))

	// Davg: the average, over all cells, of the mean curve distance to the
	// cell's nearest neighbors (Definition 2 of the paper).
	davg := core.DAvg(z, 0)

	// Theorem 1: no bijection can do better than this.
	lb := bounds.NNAvgLowerBound(u.D(), u.K())

	// Theorem 2: the Z curve's asymptotic value, 1.5× the bound.
	asym := bounds.NNAsymptote(u.D(), u.K())

	fmt.Printf("universe          : %v\n", u)
	fmt.Printf("Davg(Z)           : %.4f\n", davg)
	fmt.Printf("Theorem 1 bound   : %.4f\n", lb)
	fmt.Printf("Davg / bound      : %.4f  (→ 1.5 as n → ∞: Z is within 1.5× of ANY curve)\n", davg/lb)
	fmt.Printf("Davg / asymptote  : %.4f  (→ 1.0: Theorem 2)\n", davg/asym)

	// The same grid under a random bijection: proximity is destroyed — the
	// expected distance between any two cells is (n+1)/3.
	rnd, err := curve.NewRandom(u, 42)
	if err != nil {
		log.Fatal(err)
	}
	davgRnd := core.DAvg(rnd, 0)
	fmt.Printf("Davg(random)      : %.0f  (≈ (n+1)/3 = %.0f)\n", davgRnd, bounds.RandomCurveExpectedDelta(u.N()))
}
