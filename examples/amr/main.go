// Adaptive mesh refinement over a hierarchical curve — the Parashar &
// Browne application ([22]): a shock-front workload is resolved by grading
// the mesh, then partitioned into contiguous leaf segments. Because every
// aligned subcube is a contiguous Z-key range, refining a leaf splices its
// children in place and partitions stay valid as the mesh adapts.
//
// Run with: go run ./examples/amr
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/amr"
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/partition"
)

func main() {
	u, err := grid.New(2, 7) // up to 128×128 resolution
	if err != nil {
		log.Fatal(err)
	}
	z := curve.NewZ(u)
	mesh, err := amr.NewMesh(z, 2) // 4×4 coarse start
	if err != nil {
		log.Fatal(err)
	}

	// A circular "shock front" of radius side/3: refine any leaf the front
	// crosses, down to the finest level.
	center := float64(u.Side()) / 2
	radius := float64(u.Side()) / 3
	err = mesh.RefineWhere(u.K(), func(corner grid.Point, size uint32, level int) bool {
		// Distance from the front to the subcube's nearest/farthest corner.
		min, max := math.Inf(1), 0.0
		for dx := 0; dx <= 1; dx++ {
			for dy := 0; dy <= 1; dy++ {
				x := float64(corner[0]) + float64(dx)*float64(size) - center
				y := float64(corner[1]) + float64(dy)*float64(size) - center
				r := math.Hypot(x, y)
				min = math.Min(min, r)
				max = math.Max(max, r)
			}
		}
		return min <= radius && radius <= max // the front crosses this leaf
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := mesh.Validate(); err != nil {
		log.Fatal(err)
	}

	levels := map[int]int{}
	for _, l := range mesh.Leaves() {
		levels[l.Level]++
	}
	fmt.Printf("mesh over %v: %d leaves (uniform finest grid would need %d cells)\n",
		u, mesh.Len(), u.N())
	for lvl := 0; lvl <= u.K(); lvl++ {
		if levels[lvl] > 0 {
			fmt.Printf("  level %d (side %3d): %5d leaves\n", lvl, u.Side()>>uint(lvl), levels[lvl])
		}
	}

	// Partition by per-leaf work and report balance.
	const parts = 12
	cuts, err := mesh.Partition(parts, amr.UnitLeafWeight)
	if err != nil {
		log.Fatal(err)
	}
	loads := mesh.PartLoads(cuts, amr.UnitLeafWeight)
	fmt.Printf("\n%d contiguous leaf segments, imbalance %.4f\n",
		parts, partition.Imbalance(loads))
	fmt.Println("\nRefinement splices children into the sorted leaf array in place —")
	fmt.Println("the hierarchical-curve property that makes SFC meshes dynamic-friendly.")
}
