// Domain decomposition: partition a 2-d domain with a centered hotspot
// workload into 16 processors by cutting each space filling curve into
// contiguous weighted segments, and compare load balance and communication
// volume across curves — the parallel-computing application from the
// paper's introduction.
//
// Run with: go run ./examples/partition
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/partition"
)

func main() {
	u, err := grid.New(2, 7) // 128×128 cells
	if err != nil {
		log.Fatal(err)
	}
	const parts = 16

	fmt.Printf("universe=%v parts=%d workload=gaussian hotspot\n\n", u, parts)
	fmt.Printf("%-8s  %10s  %10s  %12s\n", "curve", "imbalance", "edge cut", "max surface")
	for _, name := range []string{"hilbert", "z", "snake", "simple", "gray", "random"} {
		c, err := curve.ByName(name, u, 1)
		if err != nil {
			log.Fatal(err)
		}
		w := hotspot(c)
		pt, err := partition.Weighted(c, parts, w)
		if err != nil {
			log.Fatal(err)
		}
		q := pt.Evaluate(w, 0)
		fmt.Printf("%-8s  %10.4f  %10d  %12d\n", name, q.Imbalance, q.EdgeCut, q.MaxSurface)
	}
	fmt.Println("\nAll curves balance the load (that only needs the prefix sums); the edge")
	fmt.Println("cut — how many neighbor pairs must communicate across processors — is")
	fmt.Println("where proximity preservation pays off.")
}

// hotspot weighs cells by a Gaussian centered in the domain, looked up via
// the curve's inverse so every curve partitions the same physical load.
func hotspot(c curve.Curve) partition.Weight {
	u := c.Universe()
	p := u.NewPoint()
	center := float64(u.Side()) / 2
	sigma := float64(u.Side()) / 8
	return func(pos uint64) float64 {
		c.Point(pos, p)
		var r2 float64
		for i := 0; i < u.D(); i++ {
			d := float64(p[i]) - center
			r2 += d * d
		}
		return 0.05 + math.Exp(-r2/(2*sigma*sigma))
	}
}
