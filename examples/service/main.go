// Serving box queries from a sharded, curve-partitioned store: the service
// layer splits the key space into contiguous curve segments (one store
// shard each), routes every query to just the shards its decomposition
// touches, and reuses decompositions through an LRU cache with singleflight
// coalescing. Faulty pages degrade answers instead of failing them: the
// merged result reports exactly which curve intervals went dark.
//
// Run with: go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/curve"
	"repro/internal/faultio"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	u, err := grid.New(2, 7) // 128×128 key space
	if err != nil {
		log.Fatal(err)
	}
	c := curve.NewHilbert(u)

	rng := rand.New(rand.NewSource(7))
	recs := make([]store.Record, 30_000)
	for i := range recs {
		recs[i] = store.Record{
			Point:   u.MustPoint(rng.Uint32()%u.Side(), rng.Uint32()%u.Side()),
			Payload: uint64(i),
		}
	}

	// Four shards; shard 2's device loses a few pages, so queries over its
	// curve segment come back degraded rather than failing.
	svc, err := service.New(c, recs, service.Config{
		Shards: 4,
		ShardOptions: func(j int) []store.Option {
			if j != 2 {
				return nil
			}
			return []store.Option{store.WithDeviceWrapper(func(dev store.PageDevice) (store.PageDevice, error) {
				return faultio.Wrap(dev, faultio.Config{Seed: 3, LostPages: []int{0, 1, 2, 3}})
			})}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	ctx := context.Background()
	boxes := []query.Box{
		mustBox(u, 10, 10, 40, 40),
		mustBox(u, 60, 60, 90, 90),
		mustBox(u, 0, 0, 127, 127),
	}
	fmt.Printf("curve=%s universe=%v shards=%d records=%d\n\n", c.Name(), u, svc.Shards(), len(recs))
	for _, b := range boxes {
		res, err := svc.Range(ctx, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("box %v..%v: %d records from %d shards", b.Lo, b.Hi, len(res.Records), res.ShardsQueried)
		if !res.Complete() {
			fmt.Printf(", %d dark curve intervals %v", len(res.Unavailable), res.Unavailable)
		}
		fmt.Println()
		// Re-issuing the same box hits the decomposition cache.
		if _, err := svc.Range(ctx, b); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nmetrics:\n%s", svc.Metrics().Report())
}

func mustBox(u *grid.Universe, x0, y0, x1, y1 uint32) query.Box {
	b, err := query.NewBox(u, u.MustPoint(x0, y0), u.MustPoint(x1, y1))
	if err != nil {
		log.Fatal(err)
	}
	return b
}
