// N-body locality: the paper motivates NN-stretch with N-body simulations,
// where "the dominant interactions are the ones between nearest neighbors".
// This example runs the same short-range particle simulation with particle
// storage ordered by different curves and reports how far apart (in the
// sorted particle array) interacting cells sit — the quantity Davg
// predicts.
//
// Run with: go run ./examples/nbody
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/nbody"
)

func main() {
	u, err := grid.New(2, 6) // 64×64 cells
	if err != nil {
		log.Fatal(err)
	}
	const particles = 8000

	fmt.Printf("universe=%v particles=%d\n\n", u, particles)
	fmt.Printf("%-8s  %10s  %14s  %12s\n", "curve", "Davg", "mean arr dist", "max arr dist")
	for _, name := range []string{"hilbert", "z", "snake", "simple", "gray", "random"} {
		c, err := curve.ByName(name, u, 1)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := nbody.New(c, nbody.Config{Particles: particles, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		// A few steps so particles spread realistically.
		for s := 0; s < 5; s++ {
			sys.Step(0.02)
		}
		loc := sys.MeasureLocality()
		davg := core.DAvg(c, 0)
		fmt.Printf("%-8s  %10.2f  %14.2f  %12d\n", name, davg, loc.MeanCellDist, loc.MaxCellDist)
	}
	fmt.Println("\nInteracting cells sit ~Davg apart along the curve: curves with small")
	fmt.Println("NN-stretch keep a particle's interaction partners nearby in memory,")
	fmt.Println("while the random bijection scatters them across the whole array.")
}
