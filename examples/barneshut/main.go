// Barnes–Hut through a Morton-keyed tree — the paper's flagship citation
// (Warren & Salmon's parallel hashed oct-tree N-body algorithm). Bodies are
// sorted by their Z-curve key; every tree node is a contiguous range of the
// sorted array, so tree traversal is pointer-free range arithmetic.
//
// The demo builds a two-cluster galaxy toy, evaluates forces at several
// opening angles θ, and reports accuracy against the exact direct sum and
// the work saved.
//
// Run with: go run ./examples/barneshut
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/grid"
	"repro/internal/octree"
)

func main() {
	u, err := grid.New(2, 8) // 256×256 domain
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	side := float64(u.Side())

	// Two Gaussian-ish clusters plus a diffuse background.
	var bodies []octree.Body
	addCluster := func(cx, cy, spread float64, count int) {
		for i := 0; i < count; i++ {
			x := clamp(cx+rng.NormFloat64()*spread, side)
			y := clamp(cy+rng.NormFloat64()*spread, side)
			bodies = append(bodies, octree.Body{Pos: []float64{x, y}, Mass: 1})
		}
	}
	addCluster(side/4, side/4, side/20, 4000)
	addCluster(3*side/4, 2*side/3, side/30, 3000)
	for i := 0; i < 1000; i++ {
		bodies = append(bodies, octree.Body{
			Pos:  []float64{rng.Float64() * side, rng.Float64() * side},
			Mass: 0.2,
		})
	}

	tree, err := octree.Build(u, bodies, octree.Config{LeafSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bodies=%d tree nodes=%d total mass=%.0f\n\n", tree.Len(), tree.Nodes(), tree.TotalMass())

	// Accuracy/work trade-off on a sample of bodies.
	fmt.Printf("%-6s  %16s  %18s  %12s\n", "theta", "mean rel error", "interactions/body", "speedup")
	force := make([]float64, 2)
	direct := make([]float64, 2)
	sample := 200
	for _, theta := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		var errSum float64
		var work int
		for s := 0; s < sample; s++ {
			i := rng.Intn(tree.Len())
			st := tree.Force(i, theta, force)
			tree.DirectForce(i, direct)
			num := math.Hypot(force[0]-direct[0], force[1]-direct[1])
			den := math.Hypot(direct[0], direct[1])
			if den > 0 {
				errSum += num / den
			}
			work += st.DirectPairs + st.Approximated
		}
		meanWork := float64(work) / float64(sample)
		fmt.Printf("%-6.1f  %16.2e  %18.1f  %11.1fx\n",
			theta, errSum/float64(sample), meanWork, float64(tree.Len()-1)/meanWork)
	}
	fmt.Println("\nEvery node is an aligned Z-key range over one sorted array — the")
	fmt.Println("space filling curve is what turns the spatial tree into flat memory.")
}

func clamp(v, side float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= side {
		return side - 1e-9
	}
	return v
}
