// Serving the sharded query service over a socket: the server wraps
// internal/service behind HTTP/JSON with admission control (a bounded
// inflight semaphore plus a queue-wait budget that sheds excess load with
// 429 + Retry-After), per-request deadlines, and a graceful drain. The
// client folds those backpressure signals into a bounded retry loop.
//
// This example runs the whole stack in one process: bulkload a service,
// bind a loopback listener, query it through internal/client, print the
// server-side metrics, then drain.
//
// Run with: go run ./examples/server
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"repro/internal/client"
	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	u, err := grid.New(2, 7) // 128×128 key space
	if err != nil {
		log.Fatal(err)
	}
	c := curve.NewHilbert(u)

	rng := rand.New(rand.NewSource(7))
	recs := make([]store.Record, 30_000)
	for i := range recs {
		recs[i] = store.Record{
			Point:   u.MustPoint(rng.Uint32()%u.Side(), rng.Uint32()%u.Side()),
			Payload: uint64(i),
		}
	}

	svc, err := service.New(c, recs, service.WithShards(4))
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(svc,
		server.WithMaxInflight(8),
		server.WithQueueWait(50*time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	base := "http://" + l.Addr().String()
	fmt.Printf("daemon on %s: curve=%s universe=%v shards=%d records=%d\n\n",
		base, c.Name(), u, svc.Shards(), len(recs))

	ctx := context.Background()
	cl := client.New(base)
	for _, corners := range [][4]uint32{
		{10, 10, 40, 40},
		{60, 60, 90, 90},
		{0, 0, 127, 127},
	} {
		b, err := query.NewBox(u,
			u.MustPoint(corners[0], corners[1]), u.MustPoint(corners[2], corners[3]))
		if err != nil {
			log.Fatal(err)
		}
		// The second argument is the per-request deadline the server
		// propagates into its scan; the client retries 429/503 with backoff.
		resp, err := cl.Query(ctx, b, 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("box %v..%v: %d records from %d shards in %dus (complete=%v)\n",
			b.Lo, b.Hi, len(resp.Records), resp.ShardsQueried, resp.ElapsedUS, resp.Complete)
	}

	mj, err := cl.MetricsJSON(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/metrics?format=json (%d bytes, globally sorted keys)\n", len(mj))

	// Graceful drain: stop accepting, finish inflight, close the service.
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		log.Fatal(err)
	}
	st := cl.Stats()
	fmt.Printf("drained cleanly; client stats: queries=%d attempts=%d retries=%d shed=%d\n",
		st.Queries, st.Attempts, st.Retries, st.Shed)
}
