// Video scrambling with space filling curves — the cryptography application
// cited in the paper's introduction (Matias & Shamir, CRYPTO '87 [16]).
// A frame is scrambled by re-ordering its pixels: read them along one curve
// and write them along another. Proximity preservation is exactly what a
// scrambler must DESTROY: a good cipher permutation behaves like the random
// curve (stretch Θ(n)), while a proximity-preserving curve leaks structure.
//
// The demo scrambles a synthetic smooth frame and reports the mean absolute
// difference between horizontally adjacent pixels — low for smooth or
// structure-preserving orders, high when locality is destroyed.
//
// Run with: go run ./examples/scramble
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
)

func main() {
	u, err := grid.New(2, 7) // 128×128 frame
	if err != nil {
		log.Fatal(err)
	}
	frame := synthesize(u)

	fmt.Printf("frame=%v  (mean |∇| of original: %.2f)\n\n", u, adjacentDelta(u, frame))
	fmt.Printf("%-10s  %14s  %16s\n", "write via", "Davg(curve)", "scrambled |∇|")
	for _, name := range []string{"hilbert", "snake", "z", "gray", "diagonal", "random"} {
		c, err := curve.ByName(name, u, 1)
		if err != nil {
			log.Fatal(err)
		}
		scrambled := scramble(u, frame, c)
		fmt.Printf("%-10s  %14.1f  %16.2f\n", name, core.DAvg(c, 0), adjacentDelta(u, scrambled))
	}
	fmt.Println("\nA scrambler wants MAXIMAL stretch: the random bijection obliterates")
	fmt.Println("pixel correlation, while proximity-preserving curves (the paper's")
	fmt.Println("heroes) leave neighborhoods intact — the two goals are exact opposites,")
	fmt.Println("and the stretch metric quantifies both.")
}

// synthesize builds a smooth test frame: a diagonal gradient with two
// Gaussian blobs.
func synthesize(u *grid.Universe) []float64 {
	side := int(u.Side())
	frame := make([]float64, u.N())
	blob := func(x, y, cx, cy, sigma float64) float64 {
		return 120 * math.Exp(-((x-cx)*(x-cx)+(y-cy)*(y-cy))/(2*sigma*sigma))
	}
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := float64(x+y) / float64(2*side) * 100
			v += blob(float64(x), float64(y), float64(side)/3, float64(side)/2, float64(side)/10)
			v += blob(float64(x), float64(y), 3*float64(side)/4, float64(side)/4, float64(side)/14)
			frame[y*side+x] = v
		}
	}
	return frame
}

// scramble reads pixels in row-major order and writes them to the position
// the curve assigns — i.e. applies the permutation rowmajor⁻¹ ∘ curve.
func scramble(u *grid.Universe, frame []float64, c curve.Curve) []float64 {
	out := make([]float64, len(frame))
	p := u.NewPoint()
	u.Cells(func(lin uint64, cell grid.Point) bool {
		// The pixel at row-major position lin moves to the cell holding
		// curve index lin.
		c.Point(lin, p)
		out[u.Linear(p)] = frame[lin]
		return true
	})
	return out
}

// adjacentDelta returns the mean |difference| between horizontally adjacent
// pixels — a crude spatial-correlation measure.
func adjacentDelta(u *grid.Universe, frame []float64) float64 {
	side := int(u.Side())
	var sum float64
	var count int
	for y := 0; y < side; y++ {
		for x := 0; x+1 < side; x++ {
			sum += math.Abs(frame[y*side+x+1] - frame[y*side+x])
			count++
		}
	}
	return sum / float64(count)
}
