// Range queries over an SFC-keyed index: the database application of space
// filling curves ([9], [1] in the paper). Points are stored sorted by curve
// key; a box query is decomposed into curve intervals and answered by
// binary search. The number of intervals — the clustering metric of Moon et
// al. — determines how many disk seeks / scan restarts the query costs.
//
// Run with: go run ./examples/rangequery
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/curve"
	"repro/internal/grid"
	"repro/internal/query"
)

func main() {
	u, err := grid.New(2, 9) // 512×512 key space
	if err != nil {
		log.Fatal(err)
	}

	// A deterministic random point set.
	rng := rand.New(rand.NewSource(99))
	pts := make([]grid.Point, 20000)
	for i := range pts {
		pts[i] = u.MustPoint(uint32(rng.Intn(512)), uint32(rng.Intn(512)))
	}

	// One box query, answered through every curve's index.
	box, err := query.NewBox(u, u.MustPoint(100, 200), u.MustPoint(163, 263))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("universe=%v points=%d box=64×64 at (100,200)\n\n", u, len(pts))
	fmt.Printf("%-8s  %10s  %10s  %10s\n", "curve", "intervals", "matched", "scanned")
	for _, name := range []string{"hilbert", "z", "gray", "snake", "simple"} {
		c, err := curve.ByName(name, u, 1)
		if err != nil {
			log.Fatal(err)
		}
		ix, err := query.Build(c, pts)
		if err != nil {
			log.Fatal(err)
		}
		result, st := ix.Range(box)
		fmt.Printf("%-8s  %10d  %10d  %10d\n", name, st.Intervals, len(result), st.Scanned)
	}

	// Nearest-neighbor lookup through the Hilbert index.
	hil := curve.NewHilbert(u)
	ix, err := query.Build(hil, pts)
	if err != nil {
		log.Fatal(err)
	}
	q := u.MustPoint(300, 40)
	p, dist, err := ix.Nearest(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnearest point to %v: %v at Euclidean distance %.3f\n", q, p, dist)
	fmt.Println("\nEvery index returns the same matches; the interval count is the cost")
	fmt.Println("of the query plan. Hilbert fragments boxes least among the hierarchical")
	fmt.Println("curves, exactly as Moon et al.'s clustering analysis predicts.")
}
