package repro

import (
	"os"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestEndToEndQuickHarness runs the entire experiment suite at quick sizes
// and renders every table in every format — the same path cmd/sfcexperiments
// exercises.
func TestEndToEndQuickHarness(t *testing.T) {
	tables, err := analysis.RunAll(analysis.QuickConfig())
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if len(tables) != len(analysis.Experiments()) {
		t.Fatalf("got %d tables for %d experiments", len(tables), len(analysis.Experiments()))
	}
	for _, tbl := range tables {
		if md := tbl.Markdown(); !strings.Contains(md, tbl.ID) {
			t.Errorf("%s: markdown lacks id", tbl.ID)
		}
		if csv := tbl.CSV(); len(strings.Split(csv, "\n")) < 3 {
			t.Errorf("%s: csv too short", tbl.ID)
		}
		if txt := tbl.Text(); len(txt) == 0 {
			t.Errorf("%s: empty text render", tbl.ID)
		}
	}
}

// TestDeliverablesPresent pins the repository contract: the documentation
// artifacts the reproduction promises must exist and be non-trivial.
func TestDeliverablesPresent(t *testing.T) {
	for _, f := range []string{"README.md", "DESIGN.md", "EXPERIMENTS.md"} {
		info, err := os.Stat(f)
		if err != nil {
			t.Errorf("missing deliverable %s: %v", f, err)
			continue
		}
		if info.Size() < 1000 {
			t.Errorf("deliverable %s suspiciously small (%d bytes)", f, info.Size())
		}
	}
	if _, err := os.Stat("go.mod"); err != nil {
		t.Errorf("missing go.mod: %v", err)
	}
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	// Every experiment id must be indexed in DESIGN.md.
	for _, id := range analysis.IDs() {
		if !strings.Contains(string(design), id) {
			t.Errorf("DESIGN.md does not index experiment %s", id)
		}
	}
}
