// Package repro is a from-scratch Go reproduction of
//
//	Pan Xu, Srikanta Tirthapura.
//	"A Lower Bound on Proximity Preservation by Space Filling Curves."
//	IEEE IPDPS 2012, pp. 1295–1305. DOI 10.1109/IPDPS.2012.118.
//
// The library lives under internal/ (see DESIGN.md for the module map):
//
//   - internal/grid      — the d-dimensional universe, metrics, the
//     nearest-neighbor decomposition p(α,β)
//   - internal/curve     — Z, simple, snake, Gray, Hilbert and random SFCs
//   - internal/core      — the stretch metrics (Davg, Dmax, all-pairs)
//   - internal/bounds    — the paper's closed-form bounds and asymptotes
//   - internal/analysis  — experiments regenerating every figure/theorem
//   - internal/{cluster,partition,nbody,query} — application substrates
//
// Binaries: cmd/sfcexperiments (regenerate all tables), cmd/sfcstretch,
// cmd/sfcviz, cmd/sfcpartition. Runnable examples live in examples/.
//
// The benchmark suite in bench_test.go has one benchmark per reproduced
// artifact (figures 1–4, Lemmas 1/2/4/5, Theorems 1–3, Propositions 1–4 and
// the extension experiments), plus throughput benchmarks for the metric
// engines.
package repro
