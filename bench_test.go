package repro

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/curve"
	"repro/internal/grid"
)

// BenchmarkExperiment has one sub-benchmark per reproduced paper artifact
// (DESIGN.md per-experiment index): running it re-executes the experiment,
// verifying the paper's claim and measuring the cost of regenerating the
// corresponding table.
func BenchmarkExperiment(b *testing.B) {
	cfg := analysis.QuickConfig()
	for _, e := range analysis.Experiments() {
		e := e
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tbl, err := e.Run(cfg)
				if err != nil {
					b.Fatalf("%s: %v", e.ID, err)
				}
				if len(tbl.Rows) == 0 {
					b.Fatalf("%s: empty table", e.ID)
				}
			}
		})
	}
}

// benchCurves is the per-curve sweep used by the throughput benchmarks.
func benchCurves(b *testing.B, u *grid.Universe) []curve.Curve {
	b.Helper()
	var cs []curve.Curve
	for _, name := range curve.Names() {
		if name == "random" && u.N() > curve.MaxRandomCells {
			continue
		}
		c, err := curve.ByName(name, u, 1)
		if err != nil {
			b.Fatal(err)
		}
		cs = append(cs, c)
	}
	return cs
}

// BenchmarkDAvg measures the exact average NN-stretch sweep (the paper's
// central quantity) across curves and sizes — the core workload behind
// Theorems 1-3.
func BenchmarkDAvg(b *testing.B) {
	for _, dk := range [][2]int{{2, 8}, {3, 5}, {4, 4}} {
		u := grid.MustNew(dk[0], dk[1])
		for _, c := range benchCurves(b, u) {
			b.Run(fmt.Sprintf("d=%d/k=%d/%s", dk[0], dk[1], c.Name()), func(b *testing.B) {
				b.SetBytes(int64(u.N()))
				for i := 0; i < b.N; i++ {
					sinkF = core.DAvg(c, 0)
				}
			})
		}
	}
}

// BenchmarkDAvgScaling tracks the parallel scaling of the exact sweep.
func BenchmarkDAvgScaling(b *testing.B) {
	u := grid.MustNew(2, 10)
	z := curve.NewZ(u)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(u.N()))
			for i := 0; i < b.N; i++ {
				sinkF = core.DAvg(z, workers)
			}
		})
	}
}

// BenchmarkAllPairs measures the exact O(n²) all-pairs stretch
// (Propositions 3-4).
func BenchmarkAllPairs(b *testing.B) {
	u := grid.MustNew(2, 5)
	for _, c := range benchCurves(b, u) {
		b.Run(c.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v, err := core.AllPairsStretch(c, core.Manhattan, 0)
				if err != nil {
					b.Fatal(err)
				}
				sinkF = v
			}
		})
	}
}

// BenchmarkCurveIndex measures raw key-computation throughput per curve.
func BenchmarkCurveIndex(b *testing.B) {
	u := grid.MustNew(3, 8)
	p := u.MustPoint(123, 45, 200)
	for _, c := range benchCurves(b, u) {
		b.Run(c.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkU = c.Index(p)
			}
		})
	}
}

// BenchmarkCurvePoint measures inverse-mapping throughput per curve.
func BenchmarkCurvePoint(b *testing.B) {
	u := grid.MustNew(3, 8)
	dst := u.NewPoint()
	for _, c := range benchCurves(b, u) {
		b.Run(c.Name(), func(b *testing.B) {
			mask := u.N() - 1
			for i := 0; i < b.N; i++ {
				c.Point(uint64(i)&mask, dst)
			}
		})
	}
}

// BenchmarkStratifiedEstimator measures the importance-stratified Davg
// estimator at a size where the exact sweep is impossible (n = 2^60) —
// the ablation justifying its existence next to SampledNNStretch.
func BenchmarkStratifiedEstimator(b *testing.B) {
	u := grid.MustNew(3, 20)
	for _, name := range []string{"z", "hilbert"} {
		c, err := curve.ByName(name, u, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est, err := core.StratifiedNNStretch(c, 1000, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				sinkF = est.DAvg
			}
		})
	}
}

// BenchmarkExhaustiveOptimal measures the all-bijections search on the
// largest feasible universe (8 cells, 40320 permutations).
func BenchmarkExhaustiveOptimal(b *testing.B) {
	u := grid.MustNew(3, 1)
	for i := 0; i < b.N; i++ {
		opt, err := core.ExhaustiveOptimal(u)
		if err != nil {
			b.Fatal(err)
		}
		sinkF = opt.MinDAvg
	}
}

var (
	sinkF float64
	sinkU uint64
)
